"""The inference server: typed queries over batch-level sessions.

:class:`InferenceServer` owns a set of *served models* — suite benchmarks
resolved by registry name (:mod:`repro.suite.registry`) or explicitly
registered SPNs — each bound to an
:class:`~repro.api.session.InferenceSession` with its compiled tape pinned,
an admission queue (:class:`~repro.serving.queue.MicroBatchQueue`) and a
pool of worker threads.  Clients submit **typed query objects**
(:mod:`repro.api.queries` — all ten kinds: likelihood, log-likelihood,
marginal, conditional, MPE, plus the analysis kinds sample, expectation,
entropy, mutual information and classify) or their serialized payloads;
workers pull
micro-batches off the queue, group the rows by ``(model, query group
key)`` — the group key carries the kind *and* every execution flag, so
coalescing can never merge rows that execute differently — rebuild one
batched query per group and execute it through the **same**
:meth:`InferenceSession.run` a direct caller would use.  A served answer is
therefore bit-identical to an offline one: the tape kernels are elementwise
across rows, making every row's value independent of its co-batched
company.  The tests cross-check this exactly, for conditionals included.

Lifecycle::

    from repro.api import Conditional

    with InferenceServer(models=["Audio", "CPU"]) as server:
        future = server.submit("Audio", {3: 1, 7: 0}, kind="log_likelihood")
        value = future.result()
        cond = server.submit("Audio", Conditional(query={5: 1}, evidence={3: 1}))

``submit`` returns a :class:`concurrent.futures.Future` (awaitable from
``asyncio`` via the async client in :mod:`repro.serving.client`).  Exiting
the context manager — or calling :meth:`InferenceServer.stop` — closes
admission and **drains**: every request admitted before the close still
completes with its correct value.

Query kinds are :class:`repro.api.QueryKind` values (a ``str`` enum, so the
historical raw strings still compare equal); an unknown kind string fails
at admission (:func:`repro.api.as_kind`), never inside the worker pool.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.queries import Conditional, Query, QueryKind, Sample, as_kind, query_type
from ..api.session import InferenceSession
from ..lifecycle.artifact import ModelArtifact
from ..lifecycle.registry import ModelRegistry, PublishReport
from ..observability import REGISTRY, TRACER, metrics_enabled
from ..spn.compiled import resolve_engine
from ..spn.graph import SPN
from ..spn.memplan import ExecutionOptions, resolve_execution
from .metrics import ServingMetrics
from .queue import (
    BatchingPolicy,
    MicroBatchQueue,
    QueueClosedError,
    QueueFullError,
    WorkItem,
)

__all__ = [
    "KIND_LIKELIHOOD",
    "KIND_LOG_LIKELIHOOD",
    "KIND_MARGINAL",
    "KIND_CONDITIONAL",
    "KIND_MPE",
    "KIND_SAMPLE",
    "KIND_EXPECTATION",
    "KIND_ENTROPY",
    "KIND_MUTUAL_INFORMATION",
    "KIND_CLASSIFY",
    "QUERY_KINDS",
    "InferenceServer",
    "ServedModel",
    "ServerClosedError",
    "UnknownModelError",
]

#: The query kinds a server answers — the shared :class:`repro.api.QueryKind`
#: vocabulary (``str``-valued enum members, so they compare equal to the
#: historical raw strings).  The value kinds batch through the compiled
#: tape; ``mpe`` runs the exact per-row MPE engine (itself backed by the
#: vectorized log-domain tape).
KIND_LIKELIHOOD = QueryKind.LIKELIHOOD
KIND_LOG_LIKELIHOOD = QueryKind.LOG_LIKELIHOOD
KIND_MARGINAL = QueryKind.MARGINAL
KIND_CONDITIONAL = QueryKind.CONDITIONAL
KIND_MPE = QueryKind.MPE
KIND_SAMPLE = QueryKind.SAMPLE
KIND_EXPECTATION = QueryKind.EXPECTATION
KIND_ENTROPY = QueryKind.ENTROPY
KIND_MUTUAL_INFORMATION = QueryKind.MUTUAL_INFORMATION
KIND_CLASSIFY = QueryKind.CLASSIFY
QUERY_KINDS = tuple(QueryKind)


logger = logging.getLogger("repro.serving")


class UnknownModelError(ValueError):
    """Raised when a query names a model the server does not host."""


class ServerClosedError(RuntimeError):
    """Raised when submitting to a server that is not accepting work."""


@dataclass(frozen=True)
class ServedModel:
    """One hosted model *version*: its name, version, and bound session.

    ``session`` is the model's :class:`~repro.api.session.InferenceSession`
    — the exact object an offline caller would use, so serving cannot drift
    from direct execution; the SPN, evidence width and pinned tape are the
    session's (exposed as read-through properties).  ``n_vars`` is the
    model's evidence width: submitted rows are normalized to exactly this
    many columns (shorter rows are padded with
    :data:`~repro.spn.evaluate.MARGINALIZED`; unobserved surplus columns
    are trimmed exactly, observed ones are rejected at admission).  The
    session's pinned ``tape`` (compiled at registration under the warm
    default, or shipped by an AOT artifact) can never be evicted while the
    model is served.

    The server keeps exactly **one** canonical ``ServedModel`` per
    installed ``(name, version)`` and pins it on every admitted work item,
    so in-flight requests keep executing on the version they were admitted
    under across a hot-swap, and worker-side grouping by served model can
    never merge rows of different versions.
    """

    name: str
    session: InferenceSession = field(repr=False)
    version: str = "0"
    artifact: Optional[ModelArtifact] = field(repr=False, default=None, compare=False)

    @property
    def spn(self) -> SPN:
        return self.session.spn

    @property
    def n_vars(self) -> int:
        return self.session.n_vars

    @property
    def tape(self):
        return self.session.tape


@dataclass(frozen=True)
class _Installed:
    """Internal result of installing one version: the model and the report."""

    served: ServedModel
    report: PublishReport


class _PendingRequest:
    """Aggregates the row-level results of one submitted request.

    ``trace`` is the admission-time trace context (``None`` when tracing
    is off): the completing thread reactivates it so the response-scatter
    span lands on the same trace as the admission span.  ``slow_query_s``
    is the server's slow-query threshold; a completed request slower than
    it is logged (WARNING on the ``repro.serving`` logger) and counted.
    """

    def __init__(
        self,
        model: str,
        kind: QueryKind,
        n_rows: int,
        metrics: ServingMetrics,
        trace: object = None,
        slow_query_s: Optional[float] = None,
    ):
        self.model = model
        self.kind = kind
        self.trace = trace
        self._slow_query_s = slow_query_s
        self.future: Future = Future()
        self._results: List[object] = [None] * n_rows
        self._remaining = n_rows
        self._lock = threading.Lock()
        self._done = False  # claimed under the lock: exactly one completer
        self._metrics = metrics
        self._created_at = perf_counter()
        if n_rows == 0:
            # A zero-row batch has nothing to deliver; resolve immediately
            # (mirroring evaluate_batch on an empty batch).
            self._done = True
            self._set_result()

    def _assemble(self) -> object:
        # Each kind reassembles its own per-row results (float stacking for
        # the value kinds, list for MPE, int64 stacking for Sample), so a
        # served result has exactly the type and dtype of offline
        # ``session.run``.
        return query_type(self.kind).assemble_rows(self._results)

    def _set_result(self) -> None:
        latency = perf_counter() - self._created_at
        if TRACER.enabled and self.trace is not None:
            # The completer may be any worker thread; reactivate the
            # admission context so the respond span joins the request's
            # trace (contextvars never crossed the queue).
            with TRACER.activate(self.trace):
                with TRACER.span(
                    "serving.respond",
                    model=self.model,
                    kind=self.kind.value,
                    latency_ms=latency * 1e3,
                ):
                    result = self._assemble()
        else:
            result = self._assemble()
        # Record before resolving: a caller that awaits the result and then
        # reads metrics.snapshot() must see its own request counted.
        if not self.future.cancelled():
            self._metrics.record_request(latency)
            if self._slow_query_s is not None and latency >= self._slow_query_s:
                if metrics_enabled():
                    self._metrics.registry.counter(
                        "serving_slow_requests_total"
                    ).inc()
                logger.warning(
                    "slow query: model=%s kind=%s latency_ms=%.3f threshold_ms=%.3f",
                    self.model,
                    self.kind.value,
                    latency * 1e3,
                    self._slow_query_s * 1e3,
                )
        try:
            self.future.set_result(result)
        except InvalidStateError:
            # The caller cancelled the future (e.g. an asyncio timeout
            # propagated through wrap_future) while its rows were queued;
            # the computed result is simply dropped.
            pass

    @property
    def abandoned(self) -> bool:
        """True once the request can no longer use results (failed/cancelled)."""
        with self._lock:
            return self._done or self.future.cancelled()

    def deliver(self, index: int, value: object) -> None:
        with self._lock:
            if self._done:
                return
            self._results[index] = value
            self._remaining -= 1
            finished = self._remaining == 0
            if finished:
                self._done = True
        if finished:
            self._set_result()

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._done:
                return
            self._done = True
        try:
            self.future.set_exception(exc)
        except InvalidStateError:  # cancelled by the caller: nothing to report
            pass


class InferenceServer:
    """Dynamic-batching inference service over the model registries.

    Parameters
    ----------
    models:
        Models to host: suite benchmark names (resolved through
        :func:`repro.suite.registry.build_benchmark`), ``(name, spn)``
        pairs, or a ``{name: spn}`` mapping.  More can be added with
        :meth:`add_model` before :meth:`start`.
    policy:
        The :class:`~repro.serving.queue.BatchingPolicy` (batch size cap,
        wait window, queue depth).
    n_workers:
        Worker threads pulling micro-batches.  One worker already keeps the
        NumPy kernels busy; more help when MPE queries (per-row Python work)
        mix with batched likelihoods.
    engine:
        Execution engine for the likelihood kinds, as accepted by
        :func:`repro.spn.evaluate.evaluate_batch` (``"vectorized"`` default,
        ``"python"`` for reference-path serving).
    warm:
        Compile every hosted model's tape at registration instead of on the
        first request (keeps compilation latency out of the serving path).
    execution:
        Tape executor for the hosted sessions — an
        :class:`~repro.spn.memplan.ExecutionOptions` or a mode string
        (``"planned"`` default, ``"sharded"``, ``"legacy"``; all
        bit-identical).  Under the planned modes every worker thread
        executes a model's micro-batches in one per-model scratch buffer,
        preallocated up to the batching policy's ``max_batch_size`` when
        the worker starts, instead of allocating a fresh ``(n_slots,
        n_rows)`` matrix per micro-batch.
    slow_query_s:
        Slow-query threshold in seconds.  A request whose submit-to-result
        latency meets it is logged at WARNING on the ``repro.serving``
        logger and counted in ``serving_slow_requests_total``.  ``None``
        (default) disables the log.
    """

    def __init__(
        self,
        models: Union[Iterable[object], Mapping[str, SPN], None] = None,
        policy: Optional[BatchingPolicy] = None,
        n_workers: int = 1,
        engine: str = "vectorized",
        warm: bool = True,
        execution: Union[ExecutionOptions, str, None] = None,
        slow_query_s: Optional[float] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.policy = policy or BatchingPolicy()
        self.engine = resolve_engine(engine)
        self.execution = resolve_execution(execution)
        self.metrics = ServingMetrics()
        self.slow_query_s = slow_query_s
        self._warm = warm
        #: The versioned model store (publish / hot-swap / rollback).
        self.registry = ModelRegistry()
        #: Canonical ServedModel per installed (name, version); admission
        #: pins these on work items, so identity grouping is exact.
        self._served: Dict[Tuple[str, str], ServedModel] = {}
        # Queue depth and queue wait live on the server's private registry
        # (alongside the ServingMetrics counters), so one snapshot shows
        # admission pressure next to throughput and latency.
        self._queue_wait = self.metrics.registry.histogram(
            "serving_queue_wait_seconds"
        )
        self._queue = MicroBatchQueue(
            self.policy,
            depth_gauge=self.metrics.registry.gauge("serving_queue_depth"),
        )
        self._workers: List[threading.Thread] = []
        self._n_workers = n_workers
        self._abort = False
        self._started = False
        for entry in self._iter_model_entries(models):
            if isinstance(entry[0], ModelArtifact):
                self.add_artifact(entry[0])
            else:
                self.add_model(*entry)

    @staticmethod
    def _iter_model_entries(models) -> Iterable[Tuple]:
        if models is None:
            return
        if isinstance(models, Mapping):
            for name, spn in models.items():
                yield name, spn
            return
        for entry in models:
            if isinstance(entry, (str, ModelArtifact)):
                yield (entry,)
            else:
                yield tuple(entry)

    # ------------------------------------------------------------------ #
    # Model hosting (versioned registry)
    # ------------------------------------------------------------------ #
    def add_model(
        self, name: str, spn: Optional[SPN] = None, version: str = "0"
    ) -> ServedModel:
        """Host ``spn`` under ``name``; a bare suite name resolves itself.

        Installs ``version`` (default ``"0"``) as the live version without
        shadow validation — this is initial registration, there is no
        incumbent to validate against.  Later versions go through
        :meth:`publish`.  ``spn`` may also be a
        :class:`~repro.lifecycle.artifact.ModelArtifact` (equivalent to
        :meth:`add_artifact` with an explicit name).
        """
        if isinstance(spn, ModelArtifact):
            return self.add_artifact(spn, name=name)
        if self.registry.live_version(name) is not None:
            raise ValueError(f"model {name!r} is already hosted")
        session = InferenceSession(
            spn if spn is not None else name,
            engine=self.engine,
            warm=self._warm,
            execution=self.execution,
        )
        return self._install(name, version, session, artifact=None, validate=False).served

    def add_artifact(
        self, artifact: ModelArtifact, name: Optional[str] = None
    ) -> ServedModel:
        """Host an AOT artifact — cold start with zero compile/plan work.

        The session adopts the artifact's shipped tape and memory plan, so
        registration performs no linearization, no tape compilation, and no
        memory planning; the artifact's recorded name and version are used
        unless ``name`` overrides the former.
        """
        name = artifact.name if name is None else name
        if self.registry.live_version(name) is not None:
            raise ValueError(f"model {name!r} is already hosted")
        session = artifact.session(engine=self.engine, execution=self.execution)
        return self._install(
            name, artifact.version, session, artifact=artifact, validate=False
        ).served

    def publish(
        self,
        name: str,
        version: str,
        model: Union[ModelArtifact, SPN, InferenceSession, str],
        validate: bool = True,
    ) -> PublishReport:
        """Install a new version of ``name`` and atomically hot-swap to it.

        ``model`` is an AOT :class:`~repro.lifecycle.artifact.ModelArtifact`
        (the production path — no compilation on the serving box), an SPN, a
        suite benchmark name, or a prepared
        :class:`~repro.api.session.InferenceSession`.  With ``validate``
        (default) and an incumbent live, the candidate must replay the
        golden-evidence set within its artifact's recorded tolerance
        (bit-identical when no artifact is given) —
        :class:`~repro.lifecycle.registry.ShadowValidationError` otherwise,
        with the incumbent left serving.  The swap itself is one pointer
        flip in the registry; requests admitted before it drain on the old
        version's tape (they pinned their ServedModel at admission), and
        requests admitted after it run the new one.
        """
        version = str(version)
        artifact: Optional[ModelArtifact] = None
        if isinstance(model, ModelArtifact):
            artifact = model
            session = model.session(engine=self.engine, execution=self.execution)
        elif isinstance(model, InferenceSession):
            session = model
        else:
            session = InferenceSession(
                model, engine=self.engine, warm=self._warm, execution=self.execution
            )
        return self._install(
            name, version, session, artifact=artifact, validate=validate
        ).report

    def _install(
        self,
        name: str,
        version: str,
        session: InferenceSession,
        artifact: Optional[ModelArtifact],
        validate: bool,
    ) -> "_Installed":
        version = str(version)
        served = ServedModel(
            name=name, session=session, version=version, artifact=artifact
        )
        # The canonical ServedModel must be resolvable before the registry
        # flips the live pointer: a submit racing the publish may resolve
        # the new version immediately after the flip.
        self._served[(name, version)] = served
        try:
            report = self.registry.publish(
                name, version, session, artifact=artifact, validate=validate
            )
        except BaseException:
            self._served.pop((name, version), None)
            raise
        return _Installed(served=served, report=report)

    def rollback(self, name: str, version: Optional[str] = None) -> ServedModel:
        """Re-point ``name`` at an older installed version (no revalidation)."""
        model = self.registry.rollback(name, version)
        return self._served[(name, model.version)]

    def models(self) -> List[str]:
        """Names of the hosted models, sorted."""
        return self.registry.names()

    def versions(self, name: str) -> List[str]:
        """Installed versions of ``name``, oldest first."""
        return self.registry.versions(name)

    def live_version(self, name: str) -> Optional[str]:
        """The version currently taking traffic for ``name``."""
        return self.registry.live_version(name)

    def model(self, name: str) -> ServedModel:
        """The live :class:`ServedModel` for ``name`` (one pointer read).

        Callers that hold the returned object keep the resolved version for
        as long as they need it — admission pins it on every work item, so
        a hot-swap never migrates in-flight rows to a different tape.
        """
        resolved = self.registry.resolve(name)
        if resolved is None:
            known = ", ".join(self.registry.names()) or "none"
            raise UnknownModelError(f"unknown model {name!r}; hosted models: {known}")
        return self._served[(name, resolved.version)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._started and not self._queue.closed

    def start(self) -> "InferenceServer":
        """Spawn the worker pool (idempotent)."""
        if self._queue.closed:
            raise ServerClosedError("server has been stopped; create a new one")
        if not self._started:
            self._started = True
            for i in range(self._n_workers):
                worker = threading.Thread(
                    target=self._worker_loop, name=f"serving-worker-{i}", daemon=True
                )
                worker.start()
                self._workers.append(worker)
        return self

    def stop(self, drain: bool = True) -> None:
        """Close admission and shut the workers down.

        With ``drain=True`` (default) every already-admitted request still
        executes and completes normally before the workers exit.  With
        ``drain=False`` queued work is failed fast with
        :class:`ServerClosedError` instead of executed.
        """
        if not drain:
            self._abort = True
        self._queue.close()
        for worker in self._workers:
            worker.join()
        self._workers.clear()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model: str,
        evidence: Union[Query, Mapping, Sequence, np.ndarray],
        kind: Union[str, QueryKind, None] = None,
        timeout: Optional[float] = None,
    ) -> Future:
        """Enqueue one query and return its :class:`~concurrent.futures.Future`.

        ``evidence`` is any of:

        * a **typed query object** (:mod:`repro.api.queries`) — the primary
          path, and the only way to submit conditionals; the object
          carries its kind, and an explicitly passed ``kind`` that
          disagrees with it is rejected (it would otherwise silently
          serve values of the wrong kind);
        * a **serialized query payload** (:func:`repro.api.serialize_query`
          output — recognized by its ``"kind"`` discriminator), which is
          deserialized and validated at admission, with the same
          mismatch check;
        * plain evidence — a ``{var: value}`` mapping, a single evidence
          row, or a 2-D array of rows (the
          :data:`~repro.spn.evaluate.MARGINALIZED` convention; float arrays
          are validated and coerced by
          :func:`~repro.spn.evaluate.as_evidence_array`) — paired with
          ``kind`` (default ``log_likelihood``), which is validated
          through :class:`repro.api.QueryKind` here, at construction time.

        The future resolves to exactly what offline ``session.run`` would
        return: a ``(n_rows,)`` float vector for the value kinds, per-row
        vectors/matrices for the analysis kinds (``sample`` stacks to an
        int64 ``(n_rows, n_samples, n_vars)`` array), or a list of
        ``{var: value}`` completions for ``mpe``.
        ``timeout`` bounds the backpressure wait when the queue is full
        (:class:`~repro.serving.queue.QueueFullError`).

        When tracing is enabled the admission path opens a
        ``serving.admission`` span and its context rides every enqueued
        work item, so the request's queue-wait, execute and respond spans
        all share one trace id regardless of which worker threads touch
        its rows.
        """
        if not TRACER.enabled:
            return self._submit(model, evidence, kind, timeout, span=None)
        with TRACER.span("serving.admission", model=model) as span:
            return self._submit(model, evidence, kind, timeout, span=span)

    def _submit(self, model, evidence, kind, timeout, span) -> Future:
        served = self.model(model)
        query = self._as_query(served, evidence, kind)
        if not self.running:
            raise ServerClosedError("server is not running; call start() first")
        rows = query.split_rows()
        key = query.group_key()
        kind_label = query.kind.value
        trace = None
        if span is not None:
            span.set(kind=kind_label, n_rows=len(rows))
            trace = TRACER.current()
        if metrics_enabled():
            # Per-(model, kind) traffic counters go to the process-wide
            # registry: they aggregate across servers and are what the
            # `python -m repro.observability snapshot` CLI reports.
            REGISTRY.counter(
                "serving_requests_total", model=model, kind=kind_label
            ).inc()
            REGISTRY.counter(
                "serving_rows_total", model=model, kind=kind_label
            ).inc(len(rows))
        request = _PendingRequest(
            model,
            query.kind,
            len(rows),
            self.metrics,
            trace=trace,
            slow_query_s=self.slow_query_s,
        )
        admitted_at = perf_counter()
        # Pin the resolved version on every row: a hot-swap between admission
        # and execution must not migrate in-flight rows to a different tape.
        items = [
            WorkItem(
                model=model, kind=key, row=rows[i], index=i, request=request,
                served=served, trace=trace, admitted_at=admitted_at,
            )
            for i in range(len(rows))
        ]
        try:
            self._queue.put_many(items, timeout=timeout)
        except QueueClosedError:
            request.fail(ServerClosedError("server stopped during admission"))
        except QueueFullError as exc:
            # Rows enqueued before the timeout deliver into an already-failed
            # request and are ignored; the caller sees the backpressure error.
            request.fail(exc)
            raise
        return request.future

    def query(self, model, evidence, kind=None, timeout=None):
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(model, evidence, kind=kind, timeout=timeout).result()

    # ------------------------------------------------------------------ #
    # Control plane (non-query requests)
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """One JSON-serializable reading of the server's state and telemetry.

        The payload bundles the hosted models with their live versions, the
        instantaneous queue depth, the :class:`ServingMetrics` snapshot
        (requests / throughput / occupancy / latency quantiles — ``None``
        quantiles while empty, never NaN) and the full private-registry
        snapshot (queue-wait histogram, slow-request counter, ...).  Every
        value round-trips through ``json.dumps`` — this is the payload the
        clients' ``server_stats()`` returns.
        """
        return {
            "models": {name: self.live_version(name) for name in self.models()},
            "running": self.running,
            "queue_depth": len(self._queue),
            "metrics": self.metrics.snapshot(),
            "registry": self.metrics.registry.snapshot(),
        }

    def control(self, op: str) -> Dict[str, object]:
        """Handle a control-plane request (one that is not a query).

        The control surface is deliberately tiny: ``"stats"`` returns
        :meth:`stats`.  Unknown ops raise ``ValueError`` at the call site —
        never inside the worker pool.
        """
        if op == "stats":
            return self.stats()
        raise ValueError(f"unknown control op {op!r}; supported ops: 'stats'")

    # ------------------------------------------------------------------ #
    # Query construction (everything becomes a typed query at admission)
    # ------------------------------------------------------------------ #
    def _as_query(self, served: ServedModel, evidence, kind) -> Query:
        """Coerce any accepted submission form to a width-normalized query.

        Typed queries pass through (re-encoded to the model's evidence
        width); payload dicts (string-keyed, carrying a ``"kind"``
        discriminator) deserialize; plain evidence pairs with ``kind``,
        which :func:`repro.api.as_kind` validates here — an unknown kind
        never reaches the worker pool.
        """
        if isinstance(evidence, Mapping) and "kind" in evidence:
            from ..api.queries import deserialize_query

            evidence = deserialize_query(evidence)
        if isinstance(evidence, Query):
            if kind is not None and as_kind(kind) != evidence.kind:
                raise ValueError(
                    f"kind {as_kind(kind).value!r} disagrees with the submitted "
                    f"{evidence.kind.value!r} query object"
                )
            return self._normalize_query(served, evidence)
        query_kind = as_kind(kind if kind is not None else KIND_LOG_LIKELIHOOD)
        if query_kind == QueryKind.CONDITIONAL:
            raise ValueError(
                "conditional queries carry two assignments; submit a typed "
                "repro.api.Conditional object (or its payload) instead of "
                "plain evidence with kind='conditional'"
            )
        return query_type(query_kind)(evidence=self._encode(served, evidence))

    def _normalize_query(self, served: ServedModel, query: Query) -> Query:
        """Re-encode a typed query's arrays to the model's evidence width."""
        if isinstance(query, Conditional):
            return Conditional(
                evidence=self._encode(served, query.evidence),
                query=self._encode(served, query.query),
                **query.params(),
            )
        if isinstance(query, Sample):
            # row_ids is array data (excluded from params so co-batching
            # stays row-scatter safe) and must survive re-encoding: it is
            # the identity that seeds each row's draws.
            return Sample(
                evidence=self._encode(served, query.evidence),
                row_ids=query.row_ids,
                **query.params(),
            )
        return type(query)(
            evidence=self._encode(served, query.evidence), **query.params()
        )

    @staticmethod
    def _encode(served: ServedModel, evidence) -> np.ndarray:
        """Normalize any accepted evidence form to a ``(k, n_vars)`` array.

        The mechanics — mapping layout, dtype validation, sentinel padding
        — are the session's
        (:meth:`repro.api.session.InferenceSession.encode`, one definition
        for every caller).  The serving layer adds its fixed-width
        admission policy on top, applied uniformly to every submission
        form (mappings, rows, batches, typed queries):

        * an **observed** variable outside the model's width is rejected —
          trimming it away would silently change the query the caller
          thinks they issued (unobserved surplus columns trim exactly:
          no indicator reads them, and MPE completions never contained
          them), which also keeps every served answer identical to
          offline ``session.run`` on the same admitted rows;
        * queued rows never alias a caller buffer that may be reused
          before the batch window closes.
        """
        wide = served.session.encode(evidence)
        n_vars = max(served.n_vars, 1)
        if wide.shape[1] > n_vars:
            surplus = wide[:, n_vars:]
            observed = surplus >= 0
            if observed.any():
                var = n_vars + int(np.argwhere(observed.any(axis=0))[0, 0])
                raise ValueError(
                    f"evidence variable {var} out of range for model "
                    f"{served.name!r} with {served.n_vars} variables"
                )
            return wide[:, :n_vars].copy()
        if isinstance(evidence, np.ndarray) and np.shares_memory(wide, evidence):
            return wide.copy()
        return wide

    # ------------------------------------------------------------------ #
    # Execution (worker side)
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        self._prewarm_workspaces()
        while True:
            batch = self._queue.get_batch()
            if batch is None:
                return
            if self._abort:
                for item in batch:
                    item.request.fail(
                        ServerClosedError("server stopped without draining")
                    )
                continue
            self._record_queue_wait(batch)
            groups: Dict[Tuple[ServedModel, tuple], List[WorkItem]] = {}
            for item in batch:
                # Rows whose request already failed (admission timeout) or
                # was cancelled would compute and count for nobody.
                if item.request.abandoned:
                    continue
                # Grouping by the *pinned* ServedModel (not the name) keeps
                # rows admitted under different versions of one model in
                # separate engine calls — each drains on its own tape.
                groups.setdefault((item.served, item.kind), []).append(item)
            # Each (model, kind) group is one engine call: record it, then
            # deliver it, before moving to the next group.  Failed rows
            # never inflate throughput, a caller woken by its result always
            # sees its group already counted, and a fast likelihood group is
            # never head-of-line blocked behind a slow MPE group that
            # happened to share the micro-batch.
            for (served, kind), items in groups.items():
                try:
                    values = self._execute_group(served, kind, items)
                except BaseException as exc:  # noqa: BLE001 - forwarded to futures
                    for item in items:
                        item.request.fail(exc)
                    continue
                self.metrics.record_batch(len(items), self.policy.max_batch_size)
                for item, value in zip(items, values):
                    item.request.deliver(item.index, value)

    def _record_queue_wait(self, batch: Sequence[WorkItem]) -> None:
        """Record each dequeued row's admission-to-dequeue wait.

        Metrics get the per-row wait distribution (the batch-assembly
        latency the wait-window knob trades against); tracing gets one
        ``serving.queue_wait`` event per row, emitted under the row's own
        admission trace so multi-batch requests still tell one story.
        """
        record = metrics_enabled()
        trace = TRACER.enabled
        if not (record or trace):
            return
        now = perf_counter()
        for item in batch:
            if item.admitted_at <= 0.0:
                continue
            wait_s = max(0.0, now - item.admitted_at)
            if record:
                self._queue_wait.observe(wait_s)
            if trace and item.trace is not None:
                with TRACER.activate(item.trace):
                    TRACER.event(
                        "serving.queue_wait",
                        model=item.model,
                        wait_ms=wait_s * 1e3,
                    )

    def _execute_group(
        self, served: ServedModel, key: tuple, items: Sequence[WorkItem]
    ) -> List[object]:
        """Run one group, under a ``serving.batch_execute`` span when tracing.

        The span is activated under the batch leader's admission context
        (the first traced item), so the session's ``session.run`` /
        ``session.tape_pass`` spans nest inside it and the whole engine
        call is attributable to a concrete request's trace.  Co-batched
        followers still link to the execution through their own
        ``serving.queue_wait`` events and ``serving.respond`` spans.
        """
        if not TRACER.enabled:
            return self._execute(served, key, items)
        leader = next((item.trace for item in items if item.trace is not None), None)
        if leader is None:
            return self._execute(served, key, items)
        with TRACER.activate(leader):
            with TRACER.span(
                "serving.batch_execute",
                model=served.name,
                version=served.version,
                kind=key[0].value,
                n_rows=len(items),
            ):
                return self._execute(served, key, items)

    def _prewarm_workspaces(self) -> None:
        """Preallocate this worker thread's per-model tape scratch buffers.

        The memory-planned executor keeps one reusable physical-slot buffer
        per (plan, thread); reserving it up to the batching policy's
        ``max_batch_size`` here means no micro-batch of a model hosted at
        worker startup ever pays a slot-matrix allocation — the buffers
        live as long as the worker and are shared by every micro-batch of
        the model.  A model registered *after* :meth:`start` warms on its
        first micro-batch instead (the executor allocates the same
        thread-local buffer on first use).  Iterates a snapshot: a
        concurrent :meth:`add_model` must not kill the worker mid-scan.
        """
        if self.execution.mode == "legacy":
            return
        for served in list(self._served.values()):
            tape = served.tape
            if tape is not None and tape.kernels:
                plan = tape.memory_plan(
                    fuse=self.execution.fuse, fuse_width=self.execution.fuse_width
                )
                plan.reserve(self.policy.max_batch_size)

    def _execute(
        self, served: ServedModel, key: tuple, items: Sequence[WorkItem]
    ) -> List[object]:
        """Run one ``(served model, group key)`` group through its session.

        The group key is :meth:`repro.api.Query.group_key` — the kind plus
        every execution parameter — so the rows of a group can always be
        rebuilt into **one batched query** of that kind and executed by the
        model's :class:`~repro.api.session.InferenceSession`.  This is the
        bit-identical contract: a served row runs through the very same
        ``session.run`` (same cached tape, elementwise kernels) a direct
        caller uses, so its value does not depend on which micro-batch it
        landed in — for conditionals exactly as for likelihoods.  ``served``
        is the model *pinned at admission*, never re-resolved here: rows in
        flight across a hot-swap complete on the version that admitted them.
        """
        kind, params = key[0], dict(key[1:])
        batch = query_type(kind).join_rows([item.row for item in items], **params)
        return list(served.session.run(batch))
