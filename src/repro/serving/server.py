"""The inference server: request-level queries over batch-level engines.

:class:`InferenceServer` owns a set of *served models* — suite benchmarks
resolved by registry name (:mod:`repro.suite.registry`) or explicitly
registered SPNs — each with its compiled tape pinned
(:func:`repro.spn.compiled.cached_tape`), an admission queue
(:class:`~repro.serving.queue.MicroBatchQueue`) and a pool of worker
threads.  Clients submit individual evidence queries (likelihood,
log-likelihood or MPE); workers pull micro-batches off the queue, group the
rows by ``(model, kind)`` and execute each group through the **same**
functions a direct caller would use (:func:`repro.spn.evaluate.evaluate_batch`
and friends), so a served answer is bit-identical to an offline one — the
batch kernels are elementwise across rows, making every row's value
independent of its co-batched company.  The tests cross-check this exactly.

Lifecycle::

    with InferenceServer(models=["Audio", "CPU"]) as server:
        future = server.submit("Audio", {3: 1, 7: 0}, kind="log_likelihood")
        value = future.result()

``submit`` returns a :class:`concurrent.futures.Future` (awaitable from
``asyncio`` via the async client in :mod:`repro.serving.client`).  Exiting
the context manager — or calling :meth:`InferenceServer.stop` — closes
admission and **drains**: every request admitted before the close still
completes with its correct value.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..spn.compiled import CompiledTape, cached_tape, resolve_engine
from ..spn.evaluate import (
    MARGINALIZED,
    as_evidence_array,
    evaluate_batch,
    evaluate_log_batch,
    row_evidence,
)
from ..spn.graph import SPN
from ..spn.nodes import IndicatorLeaf
from ..spn.queries import most_probable_explanation
from .metrics import ServingMetrics
from .queue import (
    BatchingPolicy,
    MicroBatchQueue,
    QueueClosedError,
    QueueFullError,
    WorkItem,
)

__all__ = [
    "KIND_LIKELIHOOD",
    "KIND_LOG_LIKELIHOOD",
    "KIND_MPE",
    "QUERY_KINDS",
    "InferenceServer",
    "ServedModel",
    "ServerClosedError",
    "UnknownModelError",
]

#: The three query kinds a server answers.  ``likelihood`` and
#: ``log_likelihood`` batch through the compiled tape; ``mpe`` runs the
#: exact per-row MPE query (itself backed by the vectorized engine).
KIND_LIKELIHOOD = "likelihood"
KIND_LOG_LIKELIHOOD = "log_likelihood"
KIND_MPE = "mpe"
QUERY_KINDS = (KIND_LIKELIHOOD, KIND_LOG_LIKELIHOOD, KIND_MPE)


class UnknownModelError(ValueError):
    """Raised when a query names a model the server does not host."""


class ServerClosedError(RuntimeError):
    """Raised when submitting to a server that is not accepting work."""


@dataclass(frozen=True)
class ServedModel:
    """One hosted model: its SPN, evidence width and pinned compiled tape.

    ``n_vars`` is the model's evidence width: submitted rows are normalized
    to exactly this many columns (shorter rows are padded with
    :data:`~repro.spn.evaluate.MARGINALIZED`, longer rows are truncated —
    exact in both directions, since no indicator reads a column the model
    does not have).  ``tape`` pins the compiled tape so the per-object
    cache can never evict it while the model is served.
    """

    name: str
    spn: SPN
    n_vars: int
    tape: Optional[CompiledTape] = field(repr=False, default=None)


class _PendingRequest:
    """Aggregates the row-level results of one submitted request."""

    def __init__(self, model: str, kind: str, n_rows: int, metrics: ServingMetrics):
        self.model = model
        self.kind = kind
        self.future: Future = Future()
        self._results: List[object] = [None] * n_rows
        self._remaining = n_rows
        self._lock = threading.Lock()
        self._done = False  # claimed under the lock: exactly one completer
        self._metrics = metrics
        self._created_at = perf_counter()
        if n_rows == 0:
            # A zero-row batch has nothing to deliver; resolve immediately
            # (mirroring evaluate_batch on an empty batch).
            self._done = True
            self._set_result()

    def _set_result(self) -> None:
        if self.kind == KIND_MPE:
            result: object = list(self._results)
        else:
            result = np.asarray(self._results, dtype=np.float64)
        # Record before resolving: a caller that awaits the result and then
        # reads metrics.snapshot() must see its own request counted.
        if not self.future.cancelled():
            self._metrics.record_request(perf_counter() - self._created_at)
        try:
            self.future.set_result(result)
        except InvalidStateError:
            # The caller cancelled the future (e.g. an asyncio timeout
            # propagated through wrap_future) while its rows were queued;
            # the computed result is simply dropped.
            pass

    @property
    def abandoned(self) -> bool:
        """True once the request can no longer use results (failed/cancelled)."""
        with self._lock:
            return self._done or self.future.cancelled()

    def deliver(self, index: int, value: object) -> None:
        with self._lock:
            if self._done:
                return
            self._results[index] = value
            self._remaining -= 1
            finished = self._remaining == 0
            if finished:
                self._done = True
        if finished:
            self._set_result()

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._done:
                return
            self._done = True
        try:
            self.future.set_exception(exc)
        except InvalidStateError:  # cancelled by the caller: nothing to report
            pass


class InferenceServer:
    """Dynamic-batching inference service over the model registries.

    Parameters
    ----------
    models:
        Models to host: suite benchmark names (resolved through
        :func:`repro.suite.registry.build_benchmark`), ``(name, spn)``
        pairs, or a ``{name: spn}`` mapping.  More can be added with
        :meth:`add_model` before :meth:`start`.
    policy:
        The :class:`~repro.serving.queue.BatchingPolicy` (batch size cap,
        wait window, queue depth).
    n_workers:
        Worker threads pulling micro-batches.  One worker already keeps the
        NumPy kernels busy; more help when MPE queries (per-row Python work)
        mix with batched likelihoods.
    engine:
        Execution engine for the likelihood kinds, as accepted by
        :func:`repro.spn.evaluate.evaluate_batch` (``"vectorized"`` default,
        ``"python"`` for reference-path serving).
    warm:
        Compile every hosted model's tape at registration instead of on the
        first request (keeps compilation latency out of the serving path).
    """

    def __init__(
        self,
        models: Union[Iterable[object], Mapping[str, SPN], None] = None,
        policy: Optional[BatchingPolicy] = None,
        n_workers: int = 1,
        engine: str = "vectorized",
        warm: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.policy = policy or BatchingPolicy()
        self.engine = resolve_engine(engine)
        self.metrics = ServingMetrics()
        self._warm = warm
        self._models: Dict[str, ServedModel] = {}
        self._queue = MicroBatchQueue(self.policy)
        self._workers: List[threading.Thread] = []
        self._n_workers = n_workers
        self._abort = False
        self._started = False
        for entry in self._iter_model_entries(models):
            self.add_model(*entry)

    @staticmethod
    def _iter_model_entries(models) -> Iterable[Tuple]:
        if models is None:
            return
        if isinstance(models, Mapping):
            for name, spn in models.items():
                yield name, spn
            return
        for entry in models:
            if isinstance(entry, str):
                yield (entry,)
            else:
                yield tuple(entry)

    # ------------------------------------------------------------------ #
    # Model hosting
    # ------------------------------------------------------------------ #
    def add_model(self, name: str, spn: Optional[SPN] = None) -> ServedModel:
        """Host ``spn`` under ``name``; a bare suite name resolves itself."""
        if name in self._models:
            raise ValueError(f"model {name!r} is already hosted")
        if spn is None:
            from ..suite.registry import benchmark_n_vars, build_benchmark

            spn = build_benchmark(name)
            n_vars = benchmark_n_vars(name)
        else:
            n_vars = (
                max(
                    (n.var for n in spn.nodes() if isinstance(n, IndicatorLeaf)),
                    default=-1,
                )
                + 1
            )
        tape = cached_tape(spn) if self._warm and self.engine == "vectorized" else None
        served = ServedModel(name=name, spn=spn, n_vars=n_vars, tape=tape)
        self._models[name] = served
        return served

    def models(self) -> List[str]:
        """Names of the hosted models, sorted."""
        return sorted(self._models)

    def model(self, name: str) -> ServedModel:
        served = self._models.get(name)
        if served is None:
            known = ", ".join(sorted(self._models)) or "none"
            raise UnknownModelError(f"unknown model {name!r}; hosted models: {known}")
        return served

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._started and not self._queue.closed

    def start(self) -> "InferenceServer":
        """Spawn the worker pool (idempotent)."""
        if self._queue.closed:
            raise ServerClosedError("server has been stopped; create a new one")
        if not self._started:
            self._started = True
            for i in range(self._n_workers):
                worker = threading.Thread(
                    target=self._worker_loop, name=f"serving-worker-{i}", daemon=True
                )
                worker.start()
                self._workers.append(worker)
        return self

    def stop(self, drain: bool = True) -> None:
        """Close admission and shut the workers down.

        With ``drain=True`` (default) every already-admitted request still
        executes and completes normally before the workers exit.  With
        ``drain=False`` queued work is failed fast with
        :class:`ServerClosedError` instead of executed.
        """
        if not drain:
            self._abort = True
        self._queue.close()
        for worker in self._workers:
            worker.join()
        self._workers.clear()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model: str,
        evidence: Union[Mapping[int, int], Sequence, np.ndarray],
        kind: str = KIND_LOG_LIKELIHOOD,
        timeout: Optional[float] = None,
    ) -> Future:
        """Enqueue one query and return its :class:`~concurrent.futures.Future`.

        ``evidence`` is a ``{var: value}`` mapping, a single evidence row,
        or a 2-D array of rows (the :data:`~repro.spn.evaluate.MARGINALIZED`
        convention; float arrays are validated and coerced by
        :func:`~repro.spn.evaluate.as_evidence_array`).  The future resolves
        to a ``(n_rows,)`` float vector for the likelihood kinds or a list
        of ``{var: value}`` completions for ``mpe``.  ``timeout`` bounds the
        backpressure wait when the queue is full
        (:class:`~repro.serving.queue.QueueFullError`).
        """
        if kind not in QUERY_KINDS:
            known = ", ".join(repr(k) for k in QUERY_KINDS)
            raise ValueError(f"unknown query kind {kind!r}; expected one of {known}")
        served = self.model(model)
        if not self.running:
            raise ServerClosedError("server is not running; call start() first")
        rows = self._encode(served, evidence)
        request = _PendingRequest(model, kind, len(rows), self.metrics)
        items = [
            WorkItem(model=model, kind=kind, row=rows[i], index=i, request=request)
            for i in range(len(rows))
        ]
        try:
            self._queue.put_many(items, timeout=timeout)
        except QueueClosedError:
            request.fail(ServerClosedError("server stopped during admission"))
        except QueueFullError as exc:
            # Rows enqueued before the timeout deliver into an already-failed
            # request and are ignored; the caller sees the backpressure error.
            request.fail(exc)
            raise
        return request.future

    def query(self, model, evidence, kind=KIND_LOG_LIKELIHOOD, timeout=None):
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(model, evidence, kind=kind, timeout=timeout).result()

    @staticmethod
    def _encode(served: ServedModel, evidence) -> np.ndarray:
        """Normalize any accepted evidence form to a ``(k, n_vars)`` array."""
        n_vars = max(served.n_vars, 1)
        if isinstance(evidence, Mapping):
            row = np.full((1, n_vars), MARGINALIZED, dtype=np.int64)
            if not evidence:
                return row
            # One definition of the coercion rules: keys and values go
            # through the same validator as array evidence (integral floats
            # coerce exactly; fractional/NaN/out-of-int64 entries raise).
            variables = as_evidence_array(np.asarray(list(evidence.keys())))
            values = as_evidence_array(np.asarray(list(evidence.values())))
            out_of_range = (variables < 0) | (variables >= n_vars)
            if out_of_range.any():
                raise ValueError(
                    f"evidence variable {variables[out_of_range][0]} out of range "
                    f"for model {served.name!r} with {served.n_vars} variables"
                )
            row[0, variables] = values
            return row
        rows = as_evidence_array(evidence)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise ValueError(f"expected a mapping, row or 2-D batch, got shape {rows.shape}")
        if rows.shape[1] >= n_vars:
            # Columns >= n_vars are never read by any indicator: exact trim.
            # Always a fresh copy — the rows sit in the queue until the
            # batch window closes, and must not alias a caller buffer that
            # may be reused for the next reading meanwhile.
            return rows[:, :n_vars].astype(np.int64, copy=True)
        padded = np.full((rows.shape[0], n_vars), MARGINALIZED, dtype=np.int64)
        padded[:, : rows.shape[1]] = rows
        return padded

    # ------------------------------------------------------------------ #
    # Execution (worker side)
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.get_batch()
            if batch is None:
                return
            if self._abort:
                for item in batch:
                    item.request.fail(
                        ServerClosedError("server stopped without draining")
                    )
                continue
            groups: Dict[Tuple[str, str], List[WorkItem]] = {}
            for item in batch:
                # Rows whose request already failed (admission timeout) or
                # was cancelled would compute and count for nobody.
                if item.request.abandoned:
                    continue
                groups.setdefault((item.model, item.kind), []).append(item)
            # Each (model, kind) group is one engine call: record it, then
            # deliver it, before moving to the next group.  Failed rows
            # never inflate throughput, a caller woken by its result always
            # sees its group already counted, and a fast likelihood group is
            # never head-of-line blocked behind a slow MPE group that
            # happened to share the micro-batch.
            for (model, kind), items in groups.items():
                try:
                    values = self._execute(model, kind, items)
                except BaseException as exc:  # noqa: BLE001 - forwarded to futures
                    for item in items:
                        item.request.fail(exc)
                    continue
                self.metrics.record_batch(len(items), self.policy.max_batch_size)
                for item, value in zip(items, values):
                    item.request.deliver(item.index, value)

    def _execute(self, model: str, kind: str, items: Sequence[WorkItem]) -> List[object]:
        """Run one ``(model, kind)`` group through the shared engine path.

        This is the bit-identical contract: the likelihood kinds call the
        very same :func:`evaluate_batch` / :func:`evaluate_log_batch` a
        direct caller uses (same cached tape, elementwise kernels), so a
        row's value does not depend on which micro-batch it landed in.
        """
        served = self.model(model)
        rows = np.stack([item.row for item in items])
        if kind == KIND_LIKELIHOOD:
            return list(evaluate_batch(served.spn, rows, engine=self.engine))
        if kind == KIND_LOG_LIKELIHOOD:
            return list(evaluate_log_batch(served.spn, rows, engine=self.engine))
        return [
            most_probable_explanation(served.spn, row_evidence(row)) for row in rows
        ]
