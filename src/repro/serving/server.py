"""The inference server: typed queries over batch-level sessions.

:class:`InferenceServer` owns a set of *served models* — suite benchmarks
resolved by registry name (:mod:`repro.suite.registry`) or explicitly
registered SPNs — each bound to an
:class:`~repro.api.session.InferenceSession` with its compiled tape pinned,
an admission queue (:class:`~repro.serving.queue.MicroBatchQueue`) and a
pool of worker threads.  Clients submit **typed query objects**
(:mod:`repro.api.queries` — all ten kinds: likelihood, log-likelihood,
marginal, conditional, MPE, plus the analysis kinds sample, expectation,
entropy, mutual information and classify) or their serialized payloads;
workers pull
micro-batches off the queue, group the rows by ``(model, query group
key)`` — the group key carries the kind *and* every execution flag, so
coalescing can never merge rows that execute differently — rebuild one
batched query per group and execute it through the **same**
:meth:`InferenceSession.run` a direct caller would use.  A served answer is
therefore bit-identical to an offline one: the tape kernels are elementwise
across rows, making every row's value independent of its co-batched
company.  The tests cross-check this exactly, for conditionals included.

Lifecycle::

    from repro.api import Conditional

    with InferenceServer(models=["Audio", "CPU"]) as server:
        future = server.submit("Audio", {3: 1, 7: 0}, kind="log_likelihood")
        value = future.result()
        cond = server.submit("Audio", Conditional(query={5: 1}, evidence={3: 1}))

``submit`` returns a :class:`concurrent.futures.Future` (awaitable from
``asyncio`` via the async client in :mod:`repro.serving.client`).  Exiting
the context manager — or calling :meth:`InferenceServer.stop` — closes
admission and **drains**: every request admitted before the close still
completes with its correct value.

Query kinds are :class:`repro.api.QueryKind` values (a ``str`` enum, so the
historical raw strings still compare equal); an unknown kind string fails
at admission (:func:`repro.api.as_kind`), never inside the worker pool.

Resilience (see ``docs/robustness.md`` for the full semantics):

* **Deadlines** — ``submit(..., deadline_s=...)`` stamps an absolute
  deadline on every row; backpressure waits are clipped to it and workers
  drop rows whose deadline passed *before* the engine call, failing the
  request with :class:`~repro.serving.resilience.DeadlineExceededError`.
  An expired row never reaches ``execute_batch``.
* **Load shedding** — with ``max_in_flight`` set, admission refuses new
  requests beyond that many unresolved futures with
  :class:`~repro.serving.resilience.SheddingError` (a cheap, immediate
  rejection, distinct from the timed-out backpressure wait of
  :class:`~repro.serving.queue.QueueFullError`).
* **Self-healing workers** — a worker thread that dies mid-batch first
  *rescues* the batch (un-delivered items requeue at the front, bounded
  by ``max_rescues`` per item); a supervisor thread detects dead workers
  and restarts them, counting ``serving_worker_restarts_total``.

Fault sites (:mod:`repro.faults`) are resolved **once per batch**: when no
plan is installed the worker takes :meth:`InferenceServer.
_process_batch_fast` — the original, uninstrumented path.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..api.queries import Conditional, Query, QueryKind, Sample, as_kind, query_type
from ..api.session import InferenceSession
from ..faults.hooks import active_plan as _active_fault_plan
from ..faults.plan import FaultPlan, InjectedCrash, InjectedExecutorFault
from ..lifecycle.artifact import ModelArtifact
from ..lifecycle.registry import ModelRegistry, PublishReport
from ..observability import REGISTRY, TRACER, metrics_enabled
from ..spn.compiled import resolve_engine
from ..spn.graph import SPN
from ..spn.memplan import ExecutionOptions, resolve_execution
from .metrics import ServingMetrics
from .queue import (
    BatchingPolicy,
    MicroBatchQueue,
    QueueClosedError,
    QueueFullError,
    WorkItem,
)
from .resilience import DeadlineExceededError, SheddingError, WorkerCrashError

__all__ = [
    "KIND_LIKELIHOOD",
    "KIND_LOG_LIKELIHOOD",
    "KIND_MARGINAL",
    "KIND_CONDITIONAL",
    "KIND_MPE",
    "KIND_SAMPLE",
    "KIND_EXPECTATION",
    "KIND_ENTROPY",
    "KIND_MUTUAL_INFORMATION",
    "KIND_CLASSIFY",
    "QUERY_KINDS",
    "InferenceServer",
    "ServedModel",
    "ServerClosedError",
    "UnknownModelError",
]

#: The query kinds a server answers — the shared :class:`repro.api.QueryKind`
#: vocabulary (``str``-valued enum members, so they compare equal to the
#: historical raw strings).  The value kinds batch through the compiled
#: tape; ``mpe`` runs the exact per-row MPE engine (itself backed by the
#: vectorized log-domain tape).
KIND_LIKELIHOOD = QueryKind.LIKELIHOOD
KIND_LOG_LIKELIHOOD = QueryKind.LOG_LIKELIHOOD
KIND_MARGINAL = QueryKind.MARGINAL
KIND_CONDITIONAL = QueryKind.CONDITIONAL
KIND_MPE = QueryKind.MPE
KIND_SAMPLE = QueryKind.SAMPLE
KIND_EXPECTATION = QueryKind.EXPECTATION
KIND_ENTROPY = QueryKind.ENTROPY
KIND_MUTUAL_INFORMATION = QueryKind.MUTUAL_INFORMATION
KIND_CLASSIFY = QueryKind.CLASSIFY
QUERY_KINDS = tuple(QueryKind)


logger = logging.getLogger("repro.serving")


class UnknownModelError(ValueError):
    """Raised when a query names a model the server does not host."""


class ServerClosedError(RuntimeError):
    """Raised when submitting to a server that is not accepting work."""


@dataclass(frozen=True)
class ServedModel:
    """One hosted model *version*: its name, version, and bound session.

    ``session`` is the model's :class:`~repro.api.session.InferenceSession`
    — the exact object an offline caller would use, so serving cannot drift
    from direct execution; the SPN, evidence width and pinned tape are the
    session's (exposed as read-through properties).  ``n_vars`` is the
    model's evidence width: submitted rows are normalized to exactly this
    many columns (shorter rows are padded with
    :data:`~repro.spn.evaluate.MARGINALIZED`; unobserved surplus columns
    are trimmed exactly, observed ones are rejected at admission).  The
    session's pinned ``tape`` (compiled at registration under the warm
    default, or shipped by an AOT artifact) can never be evicted while the
    model is served.

    The server keeps exactly **one** canonical ``ServedModel`` per
    installed ``(name, version)`` and pins it on every admitted work item,
    so in-flight requests keep executing on the version they were admitted
    under across a hot-swap, and worker-side grouping by served model can
    never merge rows of different versions.
    """

    name: str
    session: InferenceSession = field(repr=False)
    version: str = "0"
    artifact: Optional[ModelArtifact] = field(repr=False, default=None, compare=False)

    @property
    def spn(self) -> SPN:
        return self.session.spn

    @property
    def n_vars(self) -> int:
        return self.session.n_vars

    @property
    def tape(self):
        return self.session.tape


@dataclass(frozen=True)
class _Installed:
    """Internal result of installing one version: the model and the report."""

    served: ServedModel
    report: PublishReport


class _PendingRequest:
    """Aggregates the row-level results of one submitted request.

    ``trace`` is the admission-time trace context (``None`` when tracing
    is off): the completing thread reactivates it so the response-scatter
    span lands on the same trace as the admission span.  ``slow_query_s``
    is the server's slow-query threshold; a completed request slower than
    it is logged (WARNING on the ``repro.serving`` logger) and counted.

    ``on_done`` (the server's in-flight release) is attached as a future
    done-callback: :class:`~concurrent.futures.Future` invokes callbacks
    exactly once — on ``set_result``, ``set_exception`` *or* ``cancel()``
    — so admission-controller slots are released on every outcome,
    including a caller-side cancellation that no worker ever observes.
    """

    def __init__(
        self,
        model: str,
        kind: QueryKind,
        n_rows: int,
        metrics: ServingMetrics,
        trace: object = None,
        slow_query_s: Optional[float] = None,
        on_done: Optional[Callable[[Future], None]] = None,
    ):
        self.model = model
        self.kind = kind
        self.trace = trace
        self._slow_query_s = slow_query_s
        self.future: Future = Future()
        self._results: List[object] = [None] * n_rows
        self._remaining = n_rows
        self._filled = [False] * n_rows
        self._lock = threading.Lock()
        self._done = False  # claimed under the lock: exactly one completer
        self._metrics = metrics
        self._created_at = perf_counter()
        if n_rows == 0:
            # A zero-row batch has nothing to deliver; resolve immediately
            # (mirroring evaluate_batch on an empty batch).
            self._done = True
            self._set_result()
        if on_done is not None:
            # Attached last: on a zero-row request the future is already
            # resolved and the callback fires (releasing the slot) here.
            self.future.add_done_callback(on_done)

    def _assemble(self) -> object:
        # Each kind reassembles its own per-row results (float stacking for
        # the value kinds, list for MPE, int64 stacking for Sample), so a
        # served result has exactly the type and dtype of offline
        # ``session.run``.
        return query_type(self.kind).assemble_rows(self._results)

    def _set_result(self) -> None:
        latency = perf_counter() - self._created_at
        if TRACER.enabled and self.trace is not None:
            # The completer may be any worker thread; reactivate the
            # admission context so the respond span joins the request's
            # trace (contextvars never crossed the queue).
            with TRACER.activate(self.trace):
                with TRACER.span(
                    "serving.respond",
                    model=self.model,
                    kind=self.kind.value,
                    latency_ms=latency * 1e3,
                ):
                    result = self._assemble()
        else:
            result = self._assemble()
        # Record before resolving: a caller that awaits the result and then
        # reads metrics.snapshot() must see its own request counted.
        if not self.future.cancelled():
            self._metrics.record_request(latency)
            if self._slow_query_s is not None and latency >= self._slow_query_s:
                if metrics_enabled():
                    self._metrics.registry.counter(
                        "serving_slow_requests_total"
                    ).inc()
                logger.warning(
                    "slow query: model=%s kind=%s latency_ms=%.3f threshold_ms=%.3f",
                    self.model,
                    self.kind.value,
                    latency * 1e3,
                    self._slow_query_s * 1e3,
                )
        try:
            self.future.set_result(result)
        except InvalidStateError:
            # The caller cancelled the future (e.g. an asyncio timeout
            # propagated through wrap_future) while its rows were queued;
            # the computed result is simply dropped.
            pass

    @property
    def abandoned(self) -> bool:
        """True once the request can no longer use results (failed/cancelled)."""
        with self._lock:
            return self._done or self.future.cancelled()

    def deliver(self, index: int, value: object) -> None:
        with self._lock:
            if self._done or self._filled[index]:
                # Idempotent per row: a crash-rescued item that was already
                # delivered before the worker died must not double-count
                # against ``_remaining`` when its requeued copy re-executes.
                return
            self._filled[index] = True
            self._results[index] = value
            self._remaining -= 1
            finished = self._remaining == 0
            if finished:
                self._done = True
        if finished:
            self._set_result()

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._done:
                return
            self._done = True
        try:
            self.future.set_exception(exc)
        except InvalidStateError:  # cancelled by the caller: nothing to report
            pass


class InferenceServer:
    """Dynamic-batching inference service over the model registries.

    Parameters
    ----------
    models:
        Models to host: suite benchmark names (resolved through
        :func:`repro.suite.registry.build_benchmark`), ``(name, spn)``
        pairs, or a ``{name: spn}`` mapping.  More can be added with
        :meth:`add_model` before :meth:`start`.
    policy:
        The :class:`~repro.serving.queue.BatchingPolicy` (batch size cap,
        wait window, queue depth).
    n_workers:
        Worker threads pulling micro-batches.  One worker already keeps the
        NumPy kernels busy; more help when MPE queries (per-row Python work)
        mix with batched likelihoods.
    engine:
        Execution engine for the likelihood kinds, as accepted by
        :func:`repro.spn.evaluate.evaluate_batch` (``"vectorized"`` default,
        ``"python"`` for reference-path serving).
    warm:
        Compile every hosted model's tape at registration instead of on the
        first request (keeps compilation latency out of the serving path).
    execution:
        Tape executor for the hosted sessions — an
        :class:`~repro.spn.memplan.ExecutionOptions` or a mode string
        (``"planned"`` default, ``"sharded"``, ``"legacy"``; all
        bit-identical).  Under the planned modes every worker thread
        executes a model's micro-batches in one per-model scratch buffer,
        preallocated up to the batching policy's ``max_batch_size`` when
        the worker starts, instead of allocating a fresh ``(n_slots,
        n_rows)`` matrix per micro-batch.
    slow_query_s:
        Slow-query threshold in seconds.  A request whose submit-to-result
        latency meets it is logged at WARNING on the ``repro.serving``
        logger and counted in ``serving_slow_requests_total``.  ``None``
        (default) disables the log.
    max_in_flight:
        Admission-control bound on unresolved requests.  Beyond it,
        :meth:`submit` raises
        :class:`~repro.serving.resilience.SheddingError` immediately
        (no encoding, no enqueue) instead of letting latency collapse
        under overload.  ``None`` (default) disables shedding; the
        bounded queue's backpressure still applies either way.
    max_rescues:
        How many times one work item may be rescued from a crashing
        worker before its request fails with
        :class:`~repro.serving.resilience.WorkerCrashError`.  Bounds the
        damage of a *deterministically* crashing batch (poison pill).
    heal_interval_s:
        The supervisor's poll interval for detecting and restarting dead
        worker threads.
    """

    def __init__(
        self,
        models: Union[Iterable[object], Mapping[str, SPN], None] = None,
        policy: Optional[BatchingPolicy] = None,
        n_workers: int = 1,
        engine: str = "vectorized",
        warm: bool = True,
        execution: Union[ExecutionOptions, str, None] = None,
        slow_query_s: Optional[float] = None,
        max_in_flight: Optional[int] = None,
        max_rescues: int = 3,
        heal_interval_s: float = 0.05,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_rescues < 0:
            raise ValueError(f"max_rescues must be >= 0, got {max_rescues}")
        if heal_interval_s <= 0:
            raise ValueError(f"heal_interval_s must be > 0, got {heal_interval_s}")
        self.policy = policy or BatchingPolicy()
        self.engine = resolve_engine(engine)
        self.execution = resolve_execution(execution)
        self.metrics = ServingMetrics()
        self.slow_query_s = slow_query_s
        self._warm = warm
        #: The versioned model store (publish / hot-swap / rollback).
        self.registry = ModelRegistry()
        #: Canonical ServedModel per installed (name, version); admission
        #: pins these on work items, so identity grouping is exact.
        self._served: Dict[Tuple[str, str], ServedModel] = {}
        # Queue depth and queue wait live on the server's private registry
        # (alongside the ServingMetrics counters), so one snapshot shows
        # admission pressure next to throughput and latency.
        self._queue_wait = self.metrics.registry.histogram(
            "serving_queue_wait_seconds"
        )
        self._queue = MicroBatchQueue(
            self.policy,
            depth_gauge=self.metrics.registry.gauge("serving_queue_depth"),
        )
        # Resilience state.  Worker threads are supervised: the pool list,
        # the retired set (threads that exited *normally* on drain) and the
        # spawn counter share one lock; a pool thread that is dead but not
        # retired crashed, and the supervisor replaces it.
        self._workers: List[threading.Thread] = []
        self._n_workers = n_workers
        self._workers_lock = threading.Lock()
        self._retired: set = set()
        self._worker_seq = 0
        self._supervisor: Optional[threading.Thread] = None
        self._supervisor_stop = threading.Event()
        self.heal_interval_s = float(heal_interval_s)
        self.max_rescues = int(max_rescues)
        # Admission control: unresolved requests currently in the system.
        self._max_in_flight = max_in_flight
        self._in_flight_lock = threading.Lock()
        self._in_flight = 0
        self._in_flight_gauge = self.metrics.registry.gauge("serving_in_flight")
        self._shed_total = self.metrics.registry.counter("serving_shed_total")
        self._deadline_total = self.metrics.registry.counter(
            "serving_deadline_exceeded_total"
        )
        self._worker_restarts = self.metrics.registry.counter(
            "serving_worker_restarts_total"
        )
        self._abort = False
        self._started = False
        for entry in self._iter_model_entries(models):
            if isinstance(entry[0], ModelArtifact):
                self.add_artifact(entry[0])
            else:
                self.add_model(*entry)

    @staticmethod
    def _iter_model_entries(models) -> Iterable[Tuple]:
        if models is None:
            return
        if isinstance(models, Mapping):
            for name, spn in models.items():
                yield name, spn
            return
        for entry in models:
            if isinstance(entry, (str, ModelArtifact)):
                yield (entry,)
            else:
                yield tuple(entry)

    # ------------------------------------------------------------------ #
    # Model hosting (versioned registry)
    # ------------------------------------------------------------------ #
    def add_model(
        self, name: str, spn: Optional[SPN] = None, version: str = "0"
    ) -> ServedModel:
        """Host ``spn`` under ``name``; a bare suite name resolves itself.

        Installs ``version`` (default ``"0"``) as the live version without
        shadow validation — this is initial registration, there is no
        incumbent to validate against.  Later versions go through
        :meth:`publish`.  ``spn`` may also be a
        :class:`~repro.lifecycle.artifact.ModelArtifact` (equivalent to
        :meth:`add_artifact` with an explicit name).
        """
        if isinstance(spn, ModelArtifact):
            return self.add_artifact(spn, name=name)
        if self.registry.live_version(name) is not None:
            raise ValueError(f"model {name!r} is already hosted")
        session = InferenceSession(
            spn if spn is not None else name,
            engine=self.engine,
            warm=self._warm,
            execution=self.execution,
        )
        return self._install(name, version, session, artifact=None, validate=False).served

    def add_artifact(
        self, artifact: ModelArtifact, name: Optional[str] = None
    ) -> ServedModel:
        """Host an AOT artifact — cold start with zero compile/plan work.

        The session adopts the artifact's shipped tape and memory plan, so
        registration performs no linearization, no tape compilation, and no
        memory planning; the artifact's recorded name and version are used
        unless ``name`` overrides the former.
        """
        name = artifact.name if name is None else name
        if self.registry.live_version(name) is not None:
            raise ValueError(f"model {name!r} is already hosted")
        session = artifact.session(engine=self.engine, execution=self.execution)
        return self._install(
            name, artifact.version, session, artifact=artifact, validate=False
        ).served

    def publish(
        self,
        name: str,
        version: str,
        model: Union[ModelArtifact, SPN, InferenceSession, str],
        validate: bool = True,
    ) -> PublishReport:
        """Install a new version of ``name`` and atomically hot-swap to it.

        ``model`` is an AOT :class:`~repro.lifecycle.artifact.ModelArtifact`
        (the production path — no compilation on the serving box), an SPN, a
        suite benchmark name, or a prepared
        :class:`~repro.api.session.InferenceSession`.  With ``validate``
        (default) and an incumbent live, the candidate must replay the
        golden-evidence set within its artifact's recorded tolerance
        (bit-identical when no artifact is given) —
        :class:`~repro.lifecycle.registry.ShadowValidationError` otherwise,
        with the incumbent left serving.  The swap itself is one pointer
        flip in the registry; requests admitted before it drain on the old
        version's tape (they pinned their ServedModel at admission), and
        requests admitted after it run the new one.
        """
        version = str(version)
        artifact: Optional[ModelArtifact] = None
        if isinstance(model, ModelArtifact):
            artifact = model
            session = model.session(engine=self.engine, execution=self.execution)
        elif isinstance(model, InferenceSession):
            session = model
        else:
            session = InferenceSession(
                model, engine=self.engine, warm=self._warm, execution=self.execution
            )
        return self._install(
            name, version, session, artifact=artifact, validate=validate
        ).report

    def _install(
        self,
        name: str,
        version: str,
        session: InferenceSession,
        artifact: Optional[ModelArtifact],
        validate: bool,
    ) -> "_Installed":
        version = str(version)
        served = ServedModel(
            name=name, session=session, version=version, artifact=artifact
        )
        # The canonical ServedModel must be resolvable before the registry
        # flips the live pointer: a submit racing the publish may resolve
        # the new version immediately after the flip.
        self._served[(name, version)] = served
        try:
            report = self.registry.publish(
                name, version, session, artifact=artifact, validate=validate
            )
        except BaseException:
            self._served.pop((name, version), None)
            raise
        return _Installed(served=served, report=report)

    def rollback(self, name: str, version: Optional[str] = None) -> ServedModel:
        """Re-point ``name`` at an older installed version (no revalidation)."""
        model = self.registry.rollback(name, version)
        return self._served[(name, model.version)]

    def models(self) -> List[str]:
        """Names of the hosted models, sorted."""
        return self.registry.names()

    def versions(self, name: str) -> List[str]:
        """Installed versions of ``name``, oldest first."""
        return self.registry.versions(name)

    def live_version(self, name: str) -> Optional[str]:
        """The version currently taking traffic for ``name``."""
        return self.registry.live_version(name)

    def model(self, name: str) -> ServedModel:
        """The live :class:`ServedModel` for ``name`` (one pointer read).

        Callers that hold the returned object keep the resolved version for
        as long as they need it — admission pins it on every work item, so
        a hot-swap never migrates in-flight rows to a different tape.
        """
        resolved = self.registry.resolve(name)
        if resolved is None:
            known = ", ".join(self.registry.names()) or "none"
            raise UnknownModelError(f"unknown model {name!r}; hosted models: {known}")
        return self._served[(name, resolved.version)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._started and not self._queue.closed

    def start(self) -> "InferenceServer":
        """Spawn the worker pool and its supervisor (idempotent)."""
        if self._queue.closed:
            raise ServerClosedError("server has been stopped; create a new one")
        if not self._started:
            self._started = True
            spawned = []
            with self._workers_lock:
                for _ in range(self._n_workers):
                    worker = self._new_worker()
                    self._workers.append(worker)
                    spawned.append(worker)
            for worker in spawned:
                worker.start()
            self._supervisor = threading.Thread(
                target=self._supervise, name="serving-supervisor", daemon=True
            )
            self._supervisor.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Close admission and shut the workers down.

        With ``drain=True`` (default) every already-admitted request still
        executes and completes normally before the workers exit.  With
        ``drain=False`` queued work is failed fast with
        :class:`ServerClosedError` instead of executed.

        Workers that crash *during* the drain are still healed: the join
        loop below alternates joining the current worker generation with a
        heal pass, and only finishes once every pool slot has retired
        normally — which, with the queue closed, means the queue is empty
        and every admitted request resolved.
        """
        if not drain:
            self._abort = True
        self._queue.close()
        while True:
            with self._workers_lock:
                pending = [w for w in self._workers if w not in self._retired]
            if not pending:
                break
            for worker in pending:
                worker.join()
            self._heal_workers()
        self._supervisor_stop.set()
        if self._supervisor is not None:
            self._supervisor.join()
            self._supervisor = None
        with self._workers_lock:
            self._workers.clear()
            self._retired.clear()

    def _new_worker(self) -> threading.Thread:
        """Build (not start) one worker thread; caller holds the pool lock."""
        self._worker_seq += 1
        return threading.Thread(
            target=self._worker_main,
            name=f"serving-worker-{self._worker_seq - 1}",
            daemon=True,
        )

    def _supervise(self) -> None:
        """Supervisor loop: periodically replace crashed worker threads."""
        while not self._supervisor_stop.wait(self.heal_interval_s):
            self._heal_workers()

    def _heal_workers(self) -> int:
        """Replace every dead-but-not-retired (i.e. crashed) pool thread.

        Returns the number of workers restarted.  Safe to call from the
        supervisor, from :meth:`stop`'s drain loop, or from tests that
        want a deterministic heal instant.
        """
        replacements: List[threading.Thread] = []
        with self._workers_lock:
            for i, worker in enumerate(self._workers):
                if worker.is_alive() or worker in self._retired:
                    continue
                fresh = self._new_worker()
                self._workers[i] = fresh
                replacements.append(fresh)
        if not replacements:
            return 0
        for worker in replacements:
            worker.start()
        if metrics_enabled():
            self._worker_restarts.inc(len(replacements))
        logger.warning("restarted %d crashed serving worker(s)", len(replacements))
        return len(replacements)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        """The serving clock deadlines live on (monotonic, fault-skewable).

        With a fault plan carrying a ``clock.skew`` spec installed, the
        clock runs ``skew_s`` ahead — which ages every queued deadline at
        once, the classic way real deployments lose requests.
        """
        plan = _active_fault_plan()
        if plan is not None:
            return perf_counter() + plan.clock_skew()
        return perf_counter()

    def in_flight(self) -> int:
        """Unresolved requests currently admitted (the shedding quantity)."""
        with self._in_flight_lock:
            return self._in_flight

    def _acquire_slot(self) -> bool:
        with self._in_flight_lock:
            if (
                self._max_in_flight is not None
                and self._in_flight >= self._max_in_flight
            ):
                return False
            self._in_flight += 1
            count = self._in_flight
        self._in_flight_gauge.set(count)
        return True

    def _release_slot(self, _future: Future) -> None:
        # Future done-callback: fires exactly once per request, whether it
        # resolved, failed, or was cancelled by the caller.
        with self._in_flight_lock:
            self._in_flight -= 1
            count = self._in_flight
        self._in_flight_gauge.set(count)

    def submit(
        self,
        model: str,
        evidence: Union[Query, Mapping, Sequence, np.ndarray],
        kind: Union[str, QueryKind, None] = None,
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Enqueue one query and return its :class:`~concurrent.futures.Future`.

        ``evidence`` is any of:

        * a **typed query object** (:mod:`repro.api.queries`) — the primary
          path, and the only way to submit conditionals; the object
          carries its kind, and an explicitly passed ``kind`` that
          disagrees with it is rejected (it would otherwise silently
          serve values of the wrong kind);
        * a **serialized query payload** (:func:`repro.api.serialize_query`
          output — recognized by its ``"kind"`` discriminator), which is
          deserialized and validated at admission, with the same
          mismatch check;
        * plain evidence — a ``{var: value}`` mapping, a single evidence
          row, or a 2-D array of rows (the
          :data:`~repro.spn.evaluate.MARGINALIZED` convention; float arrays
          are validated and coerced by
          :func:`~repro.spn.evaluate.as_evidence_array`) — paired with
          ``kind`` (default ``log_likelihood``), which is validated
          through :class:`repro.api.QueryKind` here, at construction time.

        The future resolves to exactly what offline ``session.run`` would
        return: a ``(n_rows,)`` float vector for the value kinds, per-row
        vectors/matrices for the analysis kinds (``sample`` stacks to an
        int64 ``(n_rows, n_samples, n_vars)`` array), or a list of
        ``{var: value}`` completions for ``mpe``.
        ``timeout`` bounds the backpressure wait when the queue is full
        (:class:`~repro.serving.queue.QueueFullError`).

        ``deadline_s`` gives the request a deadline, measured from this
        call on the serving clock.  The backpressure wait is clipped to
        it (a wait that would outlive the deadline fails with
        :class:`~repro.serving.resilience.DeadlineExceededError` instead
        of :class:`~repro.serving.queue.QueueFullError`), and rows still
        queued when it expires are dropped by the workers *before* the
        engine call, failing the future with the same typed error.
        ``deadline_s <= 0`` sheds synchronously.

        With ``max_in_flight`` configured, admission beyond that many
        unresolved requests raises
        :class:`~repro.serving.resilience.SheddingError` before anything
        is enqueued.

        When tracing is enabled the admission path opens a
        ``serving.admission`` span and its context rides every enqueued
        work item, so the request's queue-wait, execute and respond spans
        all share one trace id regardless of which worker threads touch
        its rows.
        """
        if not TRACER.enabled:
            return self._submit(model, evidence, kind, timeout, None, deadline_s)
        with TRACER.span("serving.admission", model=model) as span:
            return self._submit(model, evidence, kind, timeout, span, deadline_s)

    def _submit(self, model, evidence, kind, timeout, span, deadline_s=None) -> Future:
        served = self.model(model)
        query = self._as_query(served, evidence, kind)
        if not self.running:
            raise ServerClosedError("server is not running; call start() first")
        deadline_at = None
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                if metrics_enabled():
                    self._deadline_total.inc()
                raise DeadlineExceededError(
                    f"deadline_s={deadline_s} leaves no time to serve the request"
                )
            deadline_at = self._now() + deadline_s
        rows = query.split_rows()
        key = query.group_key()
        kind_label = query.kind.value
        trace = None
        if span is not None:
            span.set(kind=kind_label, n_rows=len(rows))
            trace = TRACER.current()
        if metrics_enabled():
            # Per-(model, kind) traffic counters go to the process-wide
            # registry: they aggregate across servers and are what the
            # `python -m repro.observability snapshot` CLI reports.
            REGISTRY.counter(
                "serving_requests_total", model=model, kind=kind_label
            ).inc()
            REGISTRY.counter(
                "serving_rows_total", model=model, kind=kind_label
            ).inc(len(rows))
        if not self._acquire_slot():
            if metrics_enabled():
                self._shed_total.inc()
            raise SheddingError(
                f"server is at max_in_flight={self._max_in_flight} unresolved "
                f"requests; load shed (retryable)"
            )
        # From here on, every outcome — delivery, failure, cancellation —
        # releases the slot through the request's future done-callback.
        request = _PendingRequest(
            model,
            query.kind,
            len(rows),
            self.metrics,
            trace=trace,
            slow_query_s=self.slow_query_s,
            on_done=self._release_slot,
        )
        admitted_at = perf_counter()
        # Pin the resolved version on every row: a hot-swap between admission
        # and execution must not migrate in-flight rows to a different tape.
        items = [
            WorkItem(
                model=model, kind=key, row=rows[i], index=i, request=request,
                served=served, trace=trace, admitted_at=admitted_at,
                deadline_at=deadline_at,
            )
            for i in range(len(rows))
        ]
        put_timeout = timeout
        if deadline_at is not None:
            # Never wait for queue space beyond the request's own deadline.
            remaining = max(0.0, deadline_at - self._now())
            put_timeout = remaining if timeout is None else min(timeout, remaining)
        try:
            self._queue.put_many(items, timeout=put_timeout)
        except QueueClosedError:
            request.fail(ServerClosedError("server stopped during admission"))
        except QueueFullError as exc:
            # Rows enqueued before the timeout deliver into an already-failed
            # request and are ignored; the caller sees the backpressure error
            # — typed as a deadline failure when it was the deadline, not the
            # caller's own timeout, that bounded the wait.
            if deadline_at is not None and self._now() >= deadline_at:
                if metrics_enabled():
                    self._deadline_total.inc()
                deadline_exc = DeadlineExceededError(
                    f"deadline ({deadline_s}s) expired while waiting for queue "
                    f"admission"
                )
                request.fail(deadline_exc)
                raise deadline_exc from exc
            request.fail(exc)
            raise
        return request.future

    def query(self, model, evidence, kind=None, timeout=None, deadline_s=None):
        """Blocking convenience wrapper around :meth:`submit`."""
        future = self.submit(
            model, evidence, kind=kind, timeout=timeout, deadline_s=deadline_s
        )
        # The result wait is bounded when the caller bounded the request;
        # the small grace covers delivery of the worker's own typed
        # deadline failure before the local TimeoutError backstop fires.
        wait = None if deadline_s is None else deadline_s + 5.0
        return future.result(timeout=wait)

    # ------------------------------------------------------------------ #
    # Control plane (non-query requests)
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """One JSON-serializable reading of the server's state and telemetry.

        The payload bundles the hosted models with their live versions, the
        instantaneous queue depth, the :class:`ServingMetrics` snapshot
        (requests / throughput / occupancy / latency quantiles — ``None``
        quantiles while empty, never NaN) and the full private-registry
        snapshot (queue-wait histogram, slow-request counter, ...).  Every
        value round-trips through ``json.dumps`` — this is the payload the
        clients' ``server_stats()`` returns.
        """
        return {
            "models": {name: self.live_version(name) for name in self.models()},
            "running": self.running,
            "queue_depth": len(self._queue),
            "in_flight": self.in_flight(),
            "metrics": self.metrics.snapshot(),
            "registry": self.metrics.registry.snapshot(),
        }

    def control(self, op: str) -> Dict[str, object]:
        """Handle a control-plane request (one that is not a query).

        The control surface is deliberately tiny: ``"stats"`` returns
        :meth:`stats`.  Unknown ops raise ``ValueError`` at the call site —
        never inside the worker pool.
        """
        if op == "stats":
            return self.stats()
        raise ValueError(f"unknown control op {op!r}; supported ops: 'stats'")

    # ------------------------------------------------------------------ #
    # Query construction (everything becomes a typed query at admission)
    # ------------------------------------------------------------------ #
    def _as_query(self, served: ServedModel, evidence, kind) -> Query:
        """Coerce any accepted submission form to a width-normalized query.

        Typed queries pass through (re-encoded to the model's evidence
        width); payload dicts (string-keyed, carrying a ``"kind"``
        discriminator) deserialize; plain evidence pairs with ``kind``,
        which :func:`repro.api.as_kind` validates here — an unknown kind
        never reaches the worker pool.
        """
        if isinstance(evidence, Mapping) and "kind" in evidence:
            from ..api.queries import deserialize_query

            evidence = deserialize_query(evidence)
        if isinstance(evidence, Query):
            if kind is not None and as_kind(kind) != evidence.kind:
                raise ValueError(
                    f"kind {as_kind(kind).value!r} disagrees with the submitted "
                    f"{evidence.kind.value!r} query object"
                )
            return self._normalize_query(served, evidence)
        query_kind = as_kind(kind if kind is not None else KIND_LOG_LIKELIHOOD)
        if query_kind == QueryKind.CONDITIONAL:
            raise ValueError(
                "conditional queries carry two assignments; submit a typed "
                "repro.api.Conditional object (or its payload) instead of "
                "plain evidence with kind='conditional'"
            )
        return query_type(query_kind)(evidence=self._encode(served, evidence))

    def _normalize_query(self, served: ServedModel, query: Query) -> Query:
        """Re-encode a typed query's arrays to the model's evidence width."""
        if isinstance(query, Conditional):
            return Conditional(
                evidence=self._encode(served, query.evidence),
                query=self._encode(served, query.query),
                **query.params(),
            )
        if isinstance(query, Sample):
            # row_ids is array data (excluded from params so co-batching
            # stays row-scatter safe) and must survive re-encoding: it is
            # the identity that seeds each row's draws.
            return Sample(
                evidence=self._encode(served, query.evidence),
                row_ids=query.row_ids,
                **query.params(),
            )
        return type(query)(
            evidence=self._encode(served, query.evidence), **query.params()
        )

    @staticmethod
    def _encode(served: ServedModel, evidence) -> np.ndarray:
        """Normalize any accepted evidence form to a ``(k, n_vars)`` array.

        The mechanics — mapping layout, dtype validation, sentinel padding
        — are the session's
        (:meth:`repro.api.session.InferenceSession.encode`, one definition
        for every caller).  The serving layer adds its fixed-width
        admission policy on top, applied uniformly to every submission
        form (mappings, rows, batches, typed queries):

        * an **observed** variable outside the model's width is rejected —
          trimming it away would silently change the query the caller
          thinks they issued (unobserved surplus columns trim exactly:
          no indicator reads them, and MPE completions never contained
          them), which also keeps every served answer identical to
          offline ``session.run`` on the same admitted rows;
        * queued rows never alias a caller buffer that may be reused
          before the batch window closes.
        """
        wide = served.session.encode(evidence)
        n_vars = max(served.n_vars, 1)
        if wide.shape[1] > n_vars:
            surplus = wide[:, n_vars:]
            observed = surplus >= 0
            if observed.any():
                var = n_vars + int(np.argwhere(observed.any(axis=0))[0, 0])
                raise ValueError(
                    f"evidence variable {var} out of range for model "
                    f"{served.name!r} with {served.n_vars} variables"
                )
            return wide[:, :n_vars].copy()
        if isinstance(evidence, np.ndarray) and np.shares_memory(wide, evidence):
            return wide.copy()
        return wide

    # ------------------------------------------------------------------ #
    # Execution (worker side)
    # ------------------------------------------------------------------ #
    def _worker_main(self) -> None:
        """One worker generation: pull batches until drained, or die crashed.

        An exception escaping :meth:`_process_batch` (a real bug, or the
        injected ``serving.worker_crash``) kills this thread — but only
        after the batch in hand is rescued back onto the queue, so no
        admitted request is ever lost to a crash.  The supervisor notices
        the dead thread and starts a replacement.  Normal exit (queue
        closed and drained) records the thread as retired, which is how
        the supervisor tells a drained worker from a crashed one.
        """
        self._prewarm_workspaces()
        while True:
            batch = self._queue.get_batch()
            if batch is None:
                break
            if self._abort:
                for item in batch:
                    item.request.fail(
                        ServerClosedError("server stopped without draining")
                    )
                continue
            try:
                self._process_batch(batch)
            except BaseException:
                self._rescue_batch(batch)
                raise
        with self._workers_lock:
            self._retired.add(threading.current_thread())

    def _process_batch(self, batch: List[WorkItem]) -> None:
        """Process one micro-batch, resolving the fault plane exactly once.

        This is the zero-overhead-when-off switch: one module-attribute
        read, then the original uninstrumented path
        (:meth:`_process_batch_fast`) when no plan is installed.
        """
        plan = _active_fault_plan()
        if plan is None:
            self._process_batch_fast(batch)
        else:
            self._process_batch_chaos(batch, plan)

    def _process_batch_fast(self, batch: List[WorkItem]) -> None:
        """The production batch path (no fault instrumentation)."""
        self._record_queue_wait(batch)
        for (served, kind), items in self._group_batch(batch).items():
            self._run_group(served, kind, items)

    def _process_batch_chaos(self, batch: List[WorkItem], plan: FaultPlan) -> None:
        """The batch path with fault sites armed (a plan is installed).

        ``serving.worker_crash`` fires before anything is delivered, so a
        crashed batch is rescued whole; ``serving.slow_kernel`` and
        ``serving.executor_fault`` fire per engine-call group, the latter
        failing exactly that group's rows with the retryable injected
        error.
        """
        plan.maybe_raise("serving.worker_crash", InjectedCrash)
        self._record_queue_wait(batch)
        for (served, kind), items in self._group_batch(batch).items():
            plan.maybe_delay("serving.slow_kernel")
            try:
                plan.maybe_raise("serving.executor_fault", InjectedExecutorFault)
            except InjectedExecutorFault as exc:
                for item in items:
                    item.request.fail(exc)
                continue
            self._run_group(served, kind, items)

    def _group_batch(
        self, batch: List[WorkItem]
    ) -> Dict[Tuple[ServedModel, tuple], List[WorkItem]]:
        """Group live rows by pinned (served model, group key); drop the rest.

        Rows whose request already failed (admission timeout) or was
        cancelled would compute and count for nobody; rows whose deadline
        has passed are failed here with
        :class:`~repro.serving.resilience.DeadlineExceededError` — the
        deadline gate: an expired row never reaches the engine call.
        Grouping by the *pinned* ServedModel (not the name) keeps rows
        admitted under different versions of one model in separate engine
        calls — each drains on its own tape.
        """
        groups: Dict[Tuple[ServedModel, tuple], List[WorkItem]] = {}
        now = None
        for item in batch:
            if item.request.abandoned:
                continue
            if item.deadline_at is not None:
                if now is None:
                    now = self._now()
                if now >= item.deadline_at:
                    self._expire(item)
                    continue
            groups.setdefault((item.served, item.kind), []).append(item)
        return groups

    def _run_group(
        self, served: ServedModel, kind: tuple, items: List[WorkItem]
    ) -> None:
        """Run one (model, kind) group as one engine call and deliver it.

        Record-then-deliver per group, before moving to the next: failed
        rows never inflate throughput, a caller woken by its result always
        sees its group already counted, and a fast likelihood group is
        never head-of-line blocked behind a slow MPE group that happened
        to share the micro-batch.
        """
        try:
            values = self._execute_group(served, kind, items)
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            for item in items:
                item.request.fail(exc)
            return
        self.metrics.record_batch(len(items), self.policy.max_batch_size)
        for item, value in zip(items, values):
            item.request.deliver(item.index, value)

    def _expire(self, item: WorkItem) -> None:
        """Fail an expired row's request with the typed deadline error."""
        if metrics_enabled():
            self._deadline_total.inc()
        item.request.fail(
            DeadlineExceededError(
                f"deadline expired in queue before execution "
                f"(model {item.model!r})"
            )
        )

    def _rescue_batch(self, batch: List[WorkItem]) -> None:
        """Hand a dying worker's batch back to the queue (crash recovery).

        Called on the worker thread, after :meth:`_process_batch` raised
        and before the exception continues killing the thread.  Items of
        already-resolved requests are dropped; the rest requeue at the
        front, up to ``max_rescues`` attempts each — beyond that the
        request fails with
        :class:`~repro.serving.resilience.WorkerCrashError`, bounding the
        damage of a batch that crashes every worker that touches it.
        """
        rescued: List[WorkItem] = []
        for item in batch:
            if item.request.abandoned:
                continue
            item.attempts += 1
            if item.attempts > self.max_rescues:
                item.request.fail(
                    WorkerCrashError(
                        f"request abandoned after {item.attempts} worker "
                        f"crashes (model {item.model!r}; retryable)"
                    )
                )
                continue
            rescued.append(item)
        self._queue.requeue(rescued)

    def _record_queue_wait(self, batch: Sequence[WorkItem]) -> None:
        """Record each dequeued row's admission-to-dequeue wait.

        Metrics get the per-row wait distribution (the batch-assembly
        latency the wait-window knob trades against); tracing gets one
        ``serving.queue_wait`` event per row, emitted under the row's own
        admission trace so multi-batch requests still tell one story.
        """
        record = metrics_enabled()
        trace = TRACER.enabled
        if not (record or trace):
            return
        now = perf_counter()
        for item in batch:
            if item.admitted_at <= 0.0:
                continue
            wait_s = max(0.0, now - item.admitted_at)
            if record:
                self._queue_wait.observe(wait_s)
            if trace and item.trace is not None:
                with TRACER.activate(item.trace):
                    TRACER.event(
                        "serving.queue_wait",
                        model=item.model,
                        wait_ms=wait_s * 1e3,
                    )

    def _execute_group(
        self, served: ServedModel, key: tuple, items: Sequence[WorkItem]
    ) -> List[object]:
        """Run one group, under a ``serving.batch_execute`` span when tracing.

        The span is activated under the batch leader's admission context
        (the first traced item), so the session's ``session.run`` /
        ``session.tape_pass`` spans nest inside it and the whole engine
        call is attributable to a concrete request's trace.  Co-batched
        followers still link to the execution through their own
        ``serving.queue_wait`` events and ``serving.respond`` spans.
        """
        if not TRACER.enabled:
            return self._execute(served, key, items)
        leader = next((item.trace for item in items if item.trace is not None), None)
        if leader is None:
            return self._execute(served, key, items)
        with TRACER.activate(leader):
            with TRACER.span(
                "serving.batch_execute",
                model=served.name,
                version=served.version,
                kind=key[0].value,
                n_rows=len(items),
            ):
                return self._execute(served, key, items)

    def _prewarm_workspaces(self) -> None:
        """Preallocate this worker thread's per-model tape scratch buffers.

        The memory-planned executor keeps one reusable physical-slot buffer
        per (plan, thread); reserving it up to the batching policy's
        ``max_batch_size`` here means no micro-batch of a model hosted at
        worker startup ever pays a slot-matrix allocation — the buffers
        live as long as the worker and are shared by every micro-batch of
        the model.  A model registered *after* :meth:`start` warms on its
        first micro-batch instead (the executor allocates the same
        thread-local buffer on first use).  Iterates a snapshot: a
        concurrent :meth:`add_model` must not kill the worker mid-scan.
        """
        if self.execution.mode == "legacy":
            return
        for served in list(self._served.values()):
            tape = served.tape
            if tape is not None and tape.kernels:
                plan = tape.memory_plan(
                    fuse=self.execution.fuse, fuse_width=self.execution.fuse_width
                )
                plan.reserve(self.policy.max_batch_size)

    def _execute(
        self, served: ServedModel, key: tuple, items: Sequence[WorkItem]
    ) -> List[object]:
        """Run one ``(served model, group key)`` group through its session.

        The group key is :meth:`repro.api.Query.group_key` — the kind plus
        every execution parameter — so the rows of a group can always be
        rebuilt into **one batched query** of that kind and executed by the
        model's :class:`~repro.api.session.InferenceSession`.  This is the
        bit-identical contract: a served row runs through the very same
        ``session.run`` (same cached tape, elementwise kernels) a direct
        caller uses, so its value does not depend on which micro-batch it
        landed in — for conditionals exactly as for likelihoods.  ``served``
        is the model *pinned at admission*, never re-resolved here: rows in
        flight across a hot-swap complete on the version that admitted them.
        """
        kind, params = key[0], dict(key[1:])
        batch = query_type(kind).join_rows([item.row for item in items], **params)
        return list(served.session.run(batch))
