"""Benchmark suite used by the paper's evaluation (Fig. 4)."""

from .registry import (
    BENCHMARKS,
    BenchmarkProfile,
    benchmark_evaluate_batch,
    benchmark_n_vars,
    benchmark_names,
    benchmark_operation_list,
    benchmark_tape,
    build_benchmark,
    get_profile,
    suite_summary,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "benchmark_evaluate_batch",
    "benchmark_n_vars",
    "benchmark_names",
    "benchmark_operation_list",
    "benchmark_tape",
    "build_benchmark",
    "get_profile",
    "suite_summary",
]
