"""Benchmark suite mirroring the evaluation of the paper (Fig. 4).

The paper benchmarks SPNs learned on nine datasets drawn from the UCI
repository [3] and the Lowd-Davis Markov-network suite [7]: Netflix, BBC,
Bio response, Audio, CPU, MSNBC, EEG-eye, KDDCup2k and Banknote.  The
datasets and the LearnPSDD toolchain used to train the networks are not
available in this offline environment, so each benchmark is represented by a
*profile*: the dataset's variable count plus shape parameters for the
deterministic random tensorized SPN generator
(:func:`repro.spn.generate.generate_rat_spn`, the construction of the
random-SPN paper cited in the introduction of the reproduced work).

Throughput in operations/cycle is a property of the operation DAG's shape
(size, depth, fan-out, reuse) rather than of the learned parameters, so
profile-generated networks exercise the same architectural behaviour as the
paper's learned networks.  Two things are scaled down for tractability of
the pure-Python cycle-accurate simulation (see ``docs/architecture.md``):
the two large text benchmarks (BBC, Bio response) are capped to 160
variables, and network sizes target a few thousand binary operations instead
of the tens of thousands a LearnPSDD network can reach.

Besides the structural artifacts (SPN, operation list, compiled tape — all
cached), the registry offers :func:`benchmark_evaluate_batch`, the
engine-switched functional evaluation every experiment and example routes
through: ``engine="python"`` is the per-node reference walk,
``engine="vectorized"`` the compiled NumPy tape.

*Throughput* measurements on these benchmarks go through the platform-engine
registry instead (:mod:`repro.platforms`): every profile's operation list
can be handed to any registered engine by name, which is how Fig. 4 and the
sweeps iterate the suite across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from ..spn.compiled import CompiledTape, compile_tape, cross_check, resolve_engine
from ..spn.evaluate import evaluate_batch
from ..spn.generate import RatSpnConfig, generate_rat_spn
from ..spn.graph import SPN
from ..spn.linearize import OperationList, linearize

__all__ = [
    "BenchmarkProfile",
    "BENCHMARKS",
    "benchmark_names",
    "get_profile",
    "benchmark_n_vars",
    "build_benchmark",
    "benchmark_operation_list",
    "benchmark_tape",
    "benchmark_artifact",
    "benchmark_session",
    "benchmark_evaluate_batch",
    "suite_summary",
]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Shape profile of one benchmark SPN.

    Attributes
    ----------
    name:
        Benchmark name as it appears on the x-axis of Fig. 4.
    source:
        Dataset suite the benchmark comes from in the paper.
    dataset_vars:
        Number of variables of the original dataset.
    model_vars:
        Number of variables actually instantiated in this reproduction
        (capped for the large text datasets).
    depth, repetitions, n_sums, n_leaf_components, seed:
        Region-graph generator parameters (see
        :class:`repro.spn.generate.RatSpnConfig`).
    """

    name: str
    source: str
    dataset_vars: int
    model_vars: int
    repetitions: int = 2
    n_sums: int = 2
    n_leaf_components: int = 2
    split_balance: float = 0.1
    seed: int = 0

    def generator_config(self) -> RatSpnConfig:
        # The recursion depth bound is set to the variable count so that the
        # (typically unbalanced) vtree-style decomposition runs down to
        # singleton scopes, matching the deep and narrow shape of learned
        # PSDD circuits.
        return RatSpnConfig(
            n_vars=self.model_vars,
            depth=self.model_vars,
            repetitions=self.repetitions,
            n_sums=self.n_sums,
            n_leaf_components=self.n_leaf_components,
            n_values=2,
            split_balance=self.split_balance,
            seed=self.seed,
        )


# Variable counts follow the public descriptions of the datasets.
_UCI = "UCI repository [3]"
_LOWD_DAVIS = "Lowd & Davis suite [7]"

BENCHMARKS: Dict[str, BenchmarkProfile] = {
    "Netflix": BenchmarkProfile(
        name="Netflix", source=_LOWD_DAVIS, dataset_vars=100, model_vars=100,
        repetitions=2, n_sums=2, n_leaf_components=2, split_balance=0.1, seed=11,
    ),
    "BBC": BenchmarkProfile(
        name="BBC", source=_LOWD_DAVIS, dataset_vars=1058, model_vars=160,
        repetitions=2, n_sums=2, n_leaf_components=2, split_balance=0.08, seed=12,
    ),
    "Bio response": BenchmarkProfile(
        name="Bio response", source=_UCI, dataset_vars=1776, model_vars=160,
        repetitions=2, n_sums=2, n_leaf_components=2, split_balance=0.12, seed=13,
    ),
    "Audio": BenchmarkProfile(
        name="Audio", source=_LOWD_DAVIS, dataset_vars=100, model_vars=100,
        repetitions=3, n_sums=2, n_leaf_components=2, split_balance=0.1, seed=14,
    ),
    "CPU": BenchmarkProfile(
        name="CPU", source=_UCI, dataset_vars=21, model_vars=21,
        repetitions=3, n_sums=3, n_leaf_components=2, split_balance=0.15, seed=15,
    ),
    "MSNBC": BenchmarkProfile(
        name="MSNBC", source=_LOWD_DAVIS, dataset_vars=17, model_vars=17,
        repetitions=3, n_sums=3, n_leaf_components=2, split_balance=0.15, seed=16,
    ),
    "EEG-eye": BenchmarkProfile(
        name="EEG-eye", source=_UCI, dataset_vars=14, model_vars=14,
        repetitions=3, n_sums=3, n_leaf_components=2, split_balance=0.2, seed=17,
    ),
    "KDDCup2k": BenchmarkProfile(
        name="KDDCup2k", source=_LOWD_DAVIS, dataset_vars=64, model_vars=64,
        repetitions=2, n_sums=2, n_leaf_components=2, split_balance=0.1, seed=18,
    ),
    "Banknote": BenchmarkProfile(
        name="Banknote", source=_UCI, dataset_vars=4, model_vars=4,
        repetitions=3, n_sums=3, n_leaf_components=3, split_balance=0.3, seed=19,
    ),
}


def benchmark_names() -> List[str]:
    """Names of the nine benchmarks in the order of Fig. 4."""
    return list(BENCHMARKS.keys())


def get_profile(name: str) -> BenchmarkProfile:
    """Return the profile for ``name`` (raises ``KeyError`` for unknown names)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(BENCHMARKS)
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}") from None


def benchmark_n_vars(name: str) -> int:
    """Evidence width of a benchmark: the column count served rows normalize to.

    This is the instantiated ``model_vars`` (not the original dataset's
    variable count); the serving layer (:mod:`repro.serving`) uses it to pad
    and trim submitted evidence rows.
    """
    return get_profile(name).model_vars


@lru_cache(maxsize=None)
def build_benchmark(name: str) -> SPN:
    """Build (and cache) the benchmark SPN for ``name``."""
    return generate_rat_spn(get_profile(name).generator_config())


@lru_cache(maxsize=None)
def benchmark_operation_list(name: str, decompose: str = "balanced") -> OperationList:
    """Lower (and cache) the benchmark SPN into an operation list."""
    return linearize(build_benchmark(name), decompose=decompose)


@lru_cache(maxsize=None)
def benchmark_tape(name: str, decompose: str = "balanced") -> CompiledTape:
    """Compile (and cache) the benchmark operation list into a vectorized tape."""
    return compile_tape(benchmark_operation_list(name, decompose))


@lru_cache(maxsize=None)
def benchmark_artifact(name: str, version: str = "0"):
    """Package (and cache) a benchmark as an AOT lifecycle artifact.

    The artifact carries the benchmark's SPN together with its already
    compiled tape and memory plan
    (:class:`~repro.lifecycle.artifact.ModelArtifact`), so a serving
    process restarted from the saved file cold-starts without touching the
    compiler — ``python -m repro.lifecycle build --model <name>`` routes
    through this.  Lazy import: the suite registry stays importable without
    the lifecycle package and vice versa.
    """
    from ..lifecycle.artifact import build_artifact

    profile = get_profile(name)
    return build_artifact(
        build_benchmark(name),
        name=name,
        version=version,
        ops=benchmark_operation_list(name),
        metadata={"suite_profile": name, "model_vars": profile.model_vars},
    )


def benchmark_session(name: str, engine: str = "vectorized", execution=None):
    """A shared :class:`~repro.api.session.InferenceSession` for a benchmark.

    The typed-query front door for suite models: every caller asking for the
    same ``(name, engine, execution)`` gets one session, so its caches
    (pinned tape, partition function, operation list) are shared.
    ``execution`` selects the tape executor
    (:class:`~repro.spn.memplan.ExecutionOptions` or a mode string;
    ``None`` is the planned default).  Experiments and the scalar wrappers
    route through this.
    """
    from ..spn.memplan import resolve_execution

    return _benchmark_session(name, engine, resolve_execution(execution))


@lru_cache(maxsize=None)
def _benchmark_session(name: str, engine: str, execution):
    from ..api.session import InferenceSession

    return InferenceSession(name, engine=engine, execution=execution)


def benchmark_evaluate_batch(
    name: str,
    data: np.ndarray,
    engine: str = "vectorized",
    check: bool = False,
    log_domain: bool = False,
    execution=None,
) -> np.ndarray:
    """Evaluate a suite benchmark on an evidence batch with the chosen engine.

    ``data`` follows the :data:`repro.spn.evaluate.MARGINALIZED` convention.
    The vectorized engine (default) reuses the cached compiled tape;
    ``engine="python"`` falls back to the per-node reference walk of
    :func:`repro.spn.evaluate.evaluate_batch` (linear domain) or its per-row
    log counterpart.  ``check=True`` cross-checks the vectorized result
    against the reference on a prefix of the batch; ``execution`` selects
    the tape executor (planned default, sharded, legacy — bit-identical).

    Performance note: the tape is orders of magnitude faster than the
    row-by-row operation-list executor and several times faster than the
    per-node walk — since the memory-planned executor became the default
    that holds through multi-thousand-row batches too (the planned working
    set stays cache-resident where the dense slot matrix spilled); both
    engines are always available.
    """
    if resolve_engine(engine) == "vectorized":
        result = benchmark_tape(name).execute_batch(
            np.asarray(data), log_domain=log_domain, execution=execution
        )
        if check:
            cross_check(
                result,
                data,
                lambda head: benchmark_evaluate_batch(
                    name, head, engine="python", log_domain=log_domain
                ),
                atol=1e-12 if log_domain else 0.0,
                what=f"vectorized suite benchmark {name!r}",
            )
        return result
    spn = build_benchmark(name)
    if log_domain:
        from ..spn.evaluate import evaluate_log_batch

        return evaluate_log_batch(spn, data)
    return evaluate_batch(spn, data)


def suite_summary() -> List[Tuple[str, int, int, int, int]]:
    """Per-benchmark summary: (name, model_vars, n_nodes, n_operations, depth)."""
    rows = []
    for name in benchmark_names():
        spn = build_benchmark(name)
        ops = benchmark_operation_list(name)
        rows.append((name, get_profile(name).model_vars, len(spn.topological_order()),
                     ops.n_operations, ops.depth()))
    return rows
