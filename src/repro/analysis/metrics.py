"""Throughput metrics and cross-platform comparison helpers.

Everything in the paper's evaluation is expressed in *effective operations
per cycle*: the number of arithmetic operations of the SPN divided by the
cycles a platform needs for one evaluation.  This module provides the small
amount of shared arithmetic (speedups, normalization, peak detection) used by
the experiment drivers and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["PlatformResult", "speedup", "peak", "geometric_mean", "normalize"]


@dataclass(frozen=True)
class PlatformResult:
    """Throughput of one platform on one benchmark."""

    platform: str
    benchmark: str
    ops_per_cycle: float
    cycles: int
    n_operations: int

    @property
    def cycles_per_evaluation(self) -> int:
        return self.cycles


def speedup(target: float, baseline: float) -> float:
    """Ratio ``target / baseline`` guarding against a zero baseline."""
    if baseline <= 0.0:
        raise ValueError("baseline throughput must be positive")
    return target / baseline


def peak(values: Iterable[float]) -> float:
    """Maximum of a non-empty iterable of throughputs."""
    values = list(values)
    if not values:
        raise ValueError("peak() needs at least one value")
    return max(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the usual way to average speedups across benchmarks)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() needs at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean is only defined for positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def normalize(
    results: Mapping[str, float], reference: str
) -> Dict[str, float]:
    """Express every entry of ``results`` relative to ``results[reference]``."""
    if reference not in results:
        raise KeyError(f"reference platform {reference!r} missing from results")
    base = results[reference]
    return {name: speedup(value, base) for name, value in results.items()}
