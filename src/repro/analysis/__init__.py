"""Metrics and plain-text reporting used by the experiment drivers."""

from .metrics import PlatformResult, geometric_mean, normalize, peak, speedup
from .report import format_bar_chart, format_table

__all__ = [
    "PlatformResult",
    "geometric_mean",
    "normalize",
    "peak",
    "speedup",
    "format_bar_chart",
    "format_table",
]
