"""Plain-text rendering of the paper's tables and figures.

The evaluation is regenerated as ASCII tables and bar charts so the harness
has no plotting dependencies; every experiment driver in
:mod:`repro.experiments` uses these helpers for its command-line output.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_bar_chart"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` as a fixed-width text table."""
    rendered_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used for the figure panels)."""
    if not values:
        raise ValueError("bar chart needs at least one value")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak_value = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar_length = 0 if peak_value <= 0 else int(round(width * value / peak_value))
        bar = "#" * bar_length
        lines.append(f"{str(label).ljust(label_width)}  {value:8.3f}{unit}  {bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
