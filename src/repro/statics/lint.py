"""Project lint: AST rules for the concurrency and API discipline this
codebase actually relies on.

Generic linters cannot know that ``MicroBatchQueue`` mutates its deque only
under ``self._lock``, or that serving hot paths must never draw from global
RNG state.  These rules encode exactly those contracts and run over
``src/repro`` in CI (``python -m repro.statics lint``), which must stay
clean with **zero** suppressions:

``lock-guarded-write``
    A class that writes an attribute while holding one of its own locks has
    declared that attribute lock-guarded; any *other* write to it outside a
    ``with self._lock`` (or a condition built on it) is a race.  Constructors
    (``__init__`` / ``__post_init__``) are exempt — the object is not yet
    shared.  Reads are deliberately not flagged: several classes do
    intentional lock-free reads of monotonic flags (e.g. ``Tracer.enabled``)
    and claim-then-act patterns (``_PendingRequest``) that are correct by
    protocol; writes are where silent corruption starts.

``blocking-under-lock``
    A blocking call — ``time.sleep``, a zero-argument ``.join()``, a future
    ``.result()``, acquiring another lock, logging, ``print`` — inside a
    held-lock region serializes every thread behind I/O or waiting.
    ``.wait()`` / ``.wait_for()`` on the *held* condition is the one sound
    exception (it releases the lock while sleeping) and is allowed.

``bare-except``
    ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and hides the
    error type; name the exception.

``unseeded-random``
    In executor hot paths (``spn``, ``api``, ``serving``, ``lifecycle``),
    drawing from the process-global RNG (``np.random.<fn>``, ``random.<fn>``)
    or an unseeded ``np.random.default_rng()`` makes replays — golden
    validation, ``check=True`` verification, shadow deployment —
    non-reproducible.  Every draw must flow from an explicit seed.

``broad-except``
    An ``except BaseException`` handler that neither re-raises nor forwards
    the caught exception into a sink (a call that receives the bound name —
    ``future.set_exception(exc)``, a logger, an error recorder) swallows
    worker crashes, ``KeyboardInterrupt`` and injected faults silently.
    Catching ``BaseException`` is legitimate exactly twice: to clean up and
    re-raise, or to route the failure somewhere a caller will see it.

``unbounded-result``
    A zero-argument ``Future.result()`` in ``serving`` code waits forever:
    one lost wake-up (a crashed worker, a dropped response) wedges the
    caller permanently.  Every serving-side wait must carry a timeout so
    failures surface as typed errors instead of hangs.

Locks are discovered per class (``self.x = threading.Lock()`` / ``RLock`` /
``Condition``) and per module (``NAME = threading.Lock()``); a condition
variable counts as its lock.  Nested function bodies (closures handed to
executors) are skipped by the lock rules: they run on other threads at
other times, so lexical lock context proves nothing about them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

__all__ = [
    "LintFinding",
    "HOT_PATH_PACKAGES",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Sub-packages whose modules sit on the execution hot path: global RNG
#: state there breaks replay determinism.
HOT_PATH_PACKAGES = ("spn", "api", "serving", "lifecycle")

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_SEEDED_RNG_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}
_MUTATING_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "clear", "add", "discard", "update", "setdefault",
}
_CONSTRUCTORS = {"__init__", "__post_init__", "__set_name__"}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _is_threading_factory(node: ast.AST) -> Optional[str]:
    """The factory name when ``node`` is ``threading.Lock()``-shaped."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        if isinstance(func.value, ast.Name) and func.value.id == "threading":
            return func.attr
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _write_targets(stmt: ast.AST) -> List[str]:
    """``self.<attr>`` names written by an assignment-like statement."""
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    names: List[str] = []
    for target in targets:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                attr = _self_attr(element.value if isinstance(element, ast.Subscript) else element)
                if attr is not None:
                    names.append(attr)
            continue
        attr = _self_attr(node)
        if attr is not None:
            names.append(attr)
    return names


def _entered_locks(
    item: ast.withitem, class_locks: Dict[str, str], module_locks: Set[str]
) -> Optional[str]:
    """The lock *group* a ``with`` item acquires, if it is a known lock.

    Conditions built on a shared lock (``threading.Condition(self._lock)``)
    acquire that underlying lock, so they resolve to its group.
    """
    expr = item.context_expr
    attr = _self_attr(expr)
    if attr is not None and attr in class_locks:
        return class_locks[attr]
    if isinstance(expr, ast.Name) and expr.id in module_locks:
        return expr.id
    return None


class _LockWalker:
    """Walks one function body tracking which known locks are held."""

    def __init__(
        self,
        findings: List[LintFinding],
        path: str,
        class_locks: Dict[str, str],
        module_locks: Set[str],
    ) -> None:
        self.findings = findings
        self.path = path
        self.class_locks = class_locks
        self.module_locks = module_locks
        self.held: List[str] = []
        #: attr -> line of first locked write (pass 1 output).
        self.locked_writes: Dict[str, int] = {}
        #: attr -> line of each unlocked write (checked against pass 1).
        self.unlocked_writes: List[tuple] = []
        #: ``self.<method>()`` calls seen: (callee name, lock held at call).
        self.method_calls: List[tuple] = []

    # -- traversal ------------------------------------------------------- #
    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # closures execute elsewhere: lexical locks prove nothing
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = [
                lock
                for item in stmt.items
                if (lock := _entered_locks(item, self.class_locks, self.module_locks))
            ]
            for item in stmt.items:
                self._expression(item.context_expr)
            self.held.extend(acquired)
            self.walk(stmt.body)
            del self.held[len(self.held) - len(acquired) :]
            return
        for attr in _write_targets(stmt):
            if self.held:
                self.locked_writes.setdefault(attr, stmt.lineno)
            else:
                self.unlocked_writes.append((attr, stmt.lineno))
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._statement(child)
            elif isinstance(child, ast.expr):
                self._expression(child)
            elif isinstance(child, (ast.withitem, ast.ExceptHandler)):
                pass  # handled by their parents below
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                self.walk(handler.body)

    def _expression(self, expr: ast.expr) -> None:
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # deferred bodies run elsewhere
            if isinstance(node, ast.Call):
                if self.held:
                    self._check_blocking(node)
                if isinstance(node.func, ast.Attribute):
                    # self._helper() — an intra-class call edge.
                    callee = _self_attr(node.func)
                    if callee is not None:
                        self.method_calls.append((callee, bool(self.held)))
                    # Mutating method calls on self attributes count as writes.
                    if node.func.attr in _MUTATING_METHODS:
                        attr = _self_attr(node.func.value)
                        if attr is not None:
                            if self.held:
                                self.locked_writes.setdefault(attr, node.lineno)
                            else:
                                self.unlocked_writes.append((attr, node.lineno))
            stack.extend(ast.iter_child_nodes(node))

    # -- blocking calls under a held lock -------------------------------- #
    def _check_blocking(self, call: ast.Call) -> None:
        func = call.func
        reason = None
        if isinstance(func, ast.Name) and func.id == "print":
            reason = "print() while holding a lock"
        elif isinstance(func, ast.Attribute):
            owner = func.value
            if func.attr == "sleep" and isinstance(owner, ast.Name) and owner.id == "time":
                reason = "time.sleep() while holding a lock"
            elif func.attr == "join" and not call.args:
                reason = "blocking .join() while holding a lock"
            elif func.attr in {"result", "acquire"}:
                reason = f"blocking .{func.attr}() while holding a lock"
            elif func.attr in {"wait", "wait_for"}:
                attr = _self_attr(owner)
                group = self.class_locks.get(attr) if attr is not None else None
                if group is None or group not in self.held:
                    reason = (
                        f".{func.attr}() on an object that is not the held "
                        "condition (does not release the lock while waiting)"
                    )
            elif isinstance(owner, ast.Name) and owner.id in {"logger", "logging"}:
                reason = "logging call while holding a lock (handler I/O serializes all threads)"
            elif isinstance(owner, ast.Name) and owner.id == "subprocess":
                reason = "subprocess call while holding a lock"
        if reason is not None:
            self.findings.append(
                LintFinding(self.path, call.lineno, "blocking-under-lock", reason)
            )


def _module_locks(tree: ast.Module) -> Set[str]:
    locks: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _is_threading_factory(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    return locks


def _class_locks(node: ast.ClassDef) -> Dict[str, str]:
    """Map each lock-like ``self`` attribute to its lock *group*.

    ``threading.Condition(self._lock)`` shares ``self._lock``'s group —
    holding either means holding the same underlying mutex.
    """
    locks: Dict[str, str] = {}
    assigns: List[tuple] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and _is_threading_factory(child.value):
            for target in child.targets:
                attr = _self_attr(target)
                if attr is not None:
                    assigns.append((attr, child.value))
    for attr, value in assigns:
        locks.setdefault(attr, attr)
    for attr, value in assigns:
        if value.args:
            base = _self_attr(value.args[0])
            if base is not None and base in locks:
                locks[attr] = locks[base]
    return locks


def _locked_helpers(
    methods: Dict[str, ast.AST],
    class_locks: Dict[str, str],
    module_locks: Set[str],
    path: str,
) -> Set[str]:
    """Private methods only ever called while a lock is held.

    ``MicroBatchQueue._pop`` is the canonical shape: a helper documented as
    "caller holds the lock" and invoked exclusively from locked regions.
    Its body is analyzed as lock-held rather than flagged.  Computed as a
    greatest fixed point so helpers calling helpers resolve transitively;
    a private method with *no* intra-class call sites is not assumed locked.
    """
    edges: List[tuple] = []  # (caller, callee, lexically_held)
    for name, item in methods.items():
        walker = _LockWalker([], path, class_locks, module_locks)
        walker.walk(item.body)
        for callee, held in walker.method_calls:
            if callee in methods:
                edges.append((name, callee, held))
    candidates = {
        name
        for name in methods
        if name.startswith("_")
        and not name.startswith("__")
        and any(callee == name for _, callee, _ in edges)
    }
    while True:
        demoted = {
            name
            for name in candidates
            if not all(
                held or caller in candidates
                for caller, callee, held in edges
                if callee == name
            )
        }
        if not demoted:
            return candidates
        candidates -= demoted


def _lint_class(
    node: ast.ClassDef,
    module_locks: Set[str],
    path: str,
    findings: List[LintFinding],
) -> None:
    class_locks = _class_locks(node)
    if not class_locks and not module_locks:
        return
    methods = {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    helpers = _locked_helpers(methods, class_locks, module_locks, path)
    locked: Dict[str, int] = {}
    unlocked: List[tuple] = []
    for name, item in methods.items():
        walker = _LockWalker(findings, path, class_locks, module_locks)
        if name in helpers:
            walker.held.append("<caller>")
        walker.walk(item.body)
        if name in _CONSTRUCTORS:
            continue  # constructor writes are pre-publication
        for attr, line in walker.locked_writes.items():
            locked.setdefault(attr, line)
        unlocked.extend(walker.unlocked_writes)
    guarded = set(locked) - set(class_locks)
    for attr, line in unlocked:
        if attr in guarded:
            findings.append(
                LintFinding(
                    path,
                    line,
                    "lock-guarded-write",
                    f"attribute 'self.{attr}' is written under a lock elsewhere "
                    "(declared lock-guarded) but written here without one",
                )
            )


def _lint_randomness(tree: ast.Module, path: str, findings: List[LintFinding]) -> None:
    random_modules: Set[str] = set()
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "random":
                    random_modules.add(alias.asname or "random")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        owner = func.value
        # np.random.<fn>(...) — the process-global RNG.
        if (
            isinstance(owner, ast.Attribute)
            and owner.attr == "random"
            and isinstance(owner.value, ast.Name)
            and owner.value.id in {"np", "numpy"}
        ):
            if func.attr not in _SEEDED_RNG_OK:
                findings.append(
                    LintFinding(
                        path, node.lineno, "unseeded-random",
                        f"np.random.{func.attr}() draws from process-global RNG "
                        "state; use a seeded np.random.default_rng(seed)",
                    )
                )
            elif func.attr == "default_rng" and not node.args:
                findings.append(
                    LintFinding(
                        path, node.lineno, "unseeded-random",
                        "np.random.default_rng() without a seed is entropy-seeded; "
                        "pass an explicit seed",
                    )
                )
        # random.<fn>(...) — the stdlib global RNG.
        elif isinstance(owner, ast.Name) and owner.id in random_modules:
            if func.attr not in {"Random", "SystemRandom"}:
                findings.append(
                    LintFinding(
                        path, node.lineno, "unseeded-random",
                        f"random.{func.attr}() draws from process-global RNG "
                        "state; use a seeded generator",
                    )
                )


def _is_base_exception(node: Optional[ast.expr]) -> bool:
    """``node`` names ``BaseException`` (bare or as part of a tuple)."""
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_is_base_exception(element) for element in node.elts)
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Attribute):
        return node.attr == "BaseException"
    return False


def _walk_same_scope(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    """Walk statements without descending into nested function/class bodies
    (those execute elsewhere — a ``raise`` in a closure proves nothing about
    the handler it is lexically inside)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _lint_broad_except(tree: ast.Module, path: str, findings: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or not _is_base_exception(node.type):
            continue
        reraises = False
        forwards = False
        for child in _walk_same_scope(node.body):
            if isinstance(child, ast.Raise):
                reraises = True
                break
            if node.name and isinstance(child, ast.Call):
                names = [
                    sub
                    for arg in list(child.args) + [kw.value for kw in child.keywords]
                    for sub in ast.walk(arg)
                ]
                if any(
                    isinstance(sub, ast.Name) and sub.id == node.name
                    for sub in names
                ):
                    forwards = True
                    break
        if not reraises and not forwards:
            findings.append(
                LintFinding(
                    path, node.lineno, "broad-except",
                    "'except BaseException' neither re-raises nor forwards the "
                    "exception into a sink; crashes and injected faults vanish "
                    "here",
                )
            )


def _lint_unbounded_result(
    tree: ast.Module, path: str, findings: List[LintFinding]
) -> None:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "result"
            and not node.args
            and not node.keywords
        ):
            findings.append(
                LintFinding(
                    path, node.lineno, "unbounded-result",
                    ".result() without a timeout waits forever; one lost "
                    "wake-up wedges this caller — pass a timeout",
                )
            )


def lint_source(
    source: str, path: str = "<string>", hot_path: Optional[bool] = None
) -> List[LintFinding]:
    """Lint one module's source text; returns findings sorted by line.

    ``hot_path`` forces the ``unseeded-random`` rule on or off; ``None``
    derives it from ``path`` (under one of :data:`HOT_PATH_PACKAGES`).
    """
    findings: List[LintFinding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        findings.append(
            LintFinding(path, exc.lineno or 0, "syntax-error", str(exc.msg))
        )
        return findings
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                LintFinding(
                    path, node.lineno, "bare-except",
                    "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                )
            )
    module_locks = _module_locks(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _lint_class(node, module_locks, path, findings)
    # Module-level functions can also hold module locks.
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and module_locks:
            walker = _LockWalker(findings, path, set(), module_locks)
            walker.walk(node.body)
    _lint_broad_except(tree, path, findings)
    parts = Path(path).parts
    if hot_path is None:
        hot_path = any(part in HOT_PATH_PACKAGES for part in parts)
    if hot_path:
        _lint_randomness(tree, path, findings)
    if "serving" in parts:
        _lint_unbounded_result(tree, path, findings)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def lint_file(path: Union[str, Path]) -> List[LintFinding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[LintFinding]:
    """Lint every ``*.py`` under the given files/directories."""
    findings: List[LintFinding] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            findings.extend(lint_file(file))
    return findings
