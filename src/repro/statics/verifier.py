"""Static dataflow verification of the compiled tape IR and its memory plan.

The runtime already has a *dynamic* safety net — :func:`repro.spn.memplan.
verify_plan` replays a batch prefix through the planned program and compares
every slot against the legacy dense matrix — but a replay only certifies the
rows it ran.  This module is the static counterpart: it proves, **without
executing anything**, that a :class:`~repro.spn.compiled.CompiledTape` is a
well-formed levelized program and that a :class:`~repro.spn.memplan.
MemoryPlan` is a faithful register allocation of it.  Together the two form
the trust contract a native codegen backend needs (ROADMAP item 1): the
static verifier certifies *every* batch the program could ever run, the
replay cross-checks concrete values on one.

What is checked (rule names appear in every error message):

Tape (:func:`verify_tape`)
    * ``tape-input-order`` / ``tape-input-domain`` — input slots are densely
      indexed, of known kind, with non-negative finite parameters (the sign-
      domain precondition the abstract interpreter builds on);
    * ``tape-dest-contiguity`` / ``tape-operand-shape`` — kernels write
      consecutive slot intervals and carry one operand pair per lane;
    * ``tape-def-before-use`` — every operand lies strictly below its
      kernel's destination interval (topological order);
    * ``tape-level`` — recorded ASAP levels are internally consistent
      (``level = 1 + max(operand levels)`` lane by lane, non-decreasing
      across the tape);
    * ``tape-root`` / ``tape-dead-kernel`` — the root slot exists and every
      kernel contributes at least one slot the root transitively reads.

Plan (:func:`verify_memory_plan`) — the heart of the verifier.  The plan is
an independently shipped artifact section, so nothing it claims is trusted:
    * ``plan-shape-mismatch`` / ``plan-scalar-range`` — recorded shape
      scalars agree with the tape and with each other;
    * ``plan-coverage`` / ``plan-group-structure`` — the planned kernels'
      ``source_slots`` partition the tape's operation slots into whole
      same-opcode kernel runs (the fusion grouping is re-derived from them);
    * ``plan-slice-mismatch`` — precomputed strided views match their row
      arrays (the executor prefers the view; a diverging view would execute
      a different program than the one verified);
    * **symbolic replay** — the physical buffer is simulated with one
      abstract cell per row holding "which tape value lives here".  Every
      operand read must find exactly the value the source tape's dataflow
      demands (``plan-operand-mismatch``), every lazily encoded input must
      match a real input slot (``plan-encode-unknown-input``) and arrive at
      exactly its first-use kernel (``plan-encode-set-mismatch``), broadcast
      constant columns must carry bit-identical probabilities of constant
      input slots (``plan-broadcast-operand``), and the surviving root row
      must hold the root value (``plan-root``).  Def-before-use violations,
      reordered kernels and slot interference (two simultaneously live
      values sharing a physical row) all surface here: a clobbered or
      not-yet-written row cannot contain the demanded value.
    * ``plan-liveness`` — liveness is re-derived from the tape's dataflow at
      the plan's own kernel granularity (mirroring the allocator's
      retire/materialize/allocate accounting, but computed from scratch) and
      the resulting peak must equal the plan's recorded ``max_live``.

Value-equivalent input slots (two weight slots carrying the same
probability, two indicator slots testing the same variable/value) are
canonicalized before the replay: a plan that reads either copy computes
bit-identical results, so distinguishing them would reject correct plans.
Operation slots are never canonicalized — each is defined exactly once.

Performance: every rule is evaluated through whole-array NumPy passes over
the concatenated lane vectors, so a clean verification costs a bounded
number of array operations rather than Python work per kernel — the
``benchmarks/test_bench_statics.py`` gate holds the full suite pass under
5% of compile time.  The moment any vector check trips, verification
re-runs the equivalent straight-line Python walk (`_verify_tape_slow`,
`_verify_memory_plan_general`) to pinpoint the offending kernel and lane
with an exact message; plans whose ``source_slots`` are not the identity
layout every real allocator emits take the same exhaustive walk.  Both
paths enforce identical rules — the fast path is never the only judge of a
violation's details, and the slow path is never skipped when a precise
diagnosis is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..spn.compiled import canonical_value_tables
from ..spn.graph import StructureError
from ..spn.linearize import INPUT_KINDS, OP_ADD, OP_MUL

__all__ = [
    "VerificationError",
    "TapeFacts",
    "PlanFacts",
    "verify_tape",
    "verify_memory_plan",
    "verify_compiled",
]


class VerificationError(StructureError):
    """A static verification rule failed.

    ``rule`` is the stable rule identifier (also embedded in the message as
    ``[rule]``); ``detail`` the human-readable explanation.  Subclassing
    :class:`~repro.spn.graph.StructureError` lets the artifact loader
    translate verification failures into its typed corruption errors.
    """

    def __init__(self, rule: str, detail: str) -> None:
        super().__init__(f"[{rule}] {detail}")
        self.rule = rule
        self.detail = detail


def _fail(rule: str, detail: str) -> None:
    raise VerificationError(rule, detail)


@dataclass(frozen=True)
class TapeFacts:
    """What :func:`verify_tape` established about a tape."""

    n_inputs: int
    n_operations: int
    n_kernels: int
    n_levels: int
    #: Operation slots the root never transitively reads.  Individual dead
    #: lanes are tolerated (the planner retires them immediately); a fully
    #: dead kernel is an error.
    n_dead_slots: int


@dataclass(frozen=True)
class PlanFacts:
    """What :func:`verify_memory_plan` established about a plan."""

    n_kernels: int
    n_physical: int
    max_live: int
    #: Tape kernels per planned kernel, averaged (1.0 = unfused).
    fusion: float
    #: Input slots materialized lazily via encode records.
    n_encoded_inputs: int
    #: Operand lanes carried as broadcast constant columns.
    n_broadcast_lanes: int


# --------------------------------------------------------------------------- #
# Shared lane-vector helpers
# --------------------------------------------------------------------------- #
def _lane_args(tape) -> Tuple[np.ndarray, np.ndarray]:
    """The tape's operand vectors concatenated in lane order, memoized.

    Lane order is destination-slot order (``n_inputs .. n_slots``), so
    ``arg0_all[s - n_inputs]`` is the first operand of the kernel lane that
    computes slot ``s``.  Memoized on the tape object: tapes are immutable
    in practice and both :func:`verify_tape` and :func:`verify_memory_plan`
    need the same concatenation.
    """
    cached = getattr(tape, "_statics_lane_args", None)
    if cached is not None:
        return cached
    if tape.kernels:
        arg0 = np.concatenate([k.arg0 for k in tape.kernels])
        arg1 = np.concatenate([k.arg1 for k in tape.kernels])
    else:
        arg0 = np.empty(0, dtype=np.intp)
        arg1 = np.empty(0, dtype=np.intp)
    tape._statics_lane_args = (arg0, arg1)
    return arg0, arg1


def _first_mismatched_slice(
    pairs: Sequence[Tuple[Optional[slice], np.ndarray]]
) -> int:
    """Index of the first pair whose strided view != its row array, or -1.

    Every pair with a view is expanded symbolically (``start + step*lane``)
    and compared in one concatenated pass.
    """
    selected = [
        (i, view, rows) for i, (view, rows) in enumerate(pairs) if view is not None
    ]
    if not selected:
        return -1
    count = len(selected)
    starts = np.fromiter((view.start for _, view, _ in selected), np.int64, count)
    stops = np.fromiter((view.stop for _, view, _ in selected), np.int64, count)
    steps = np.fromiter(((view.step or 1) for _, view, _ in selected), np.int64, count)
    widths = np.fromiter((rows.size for _, _, rows in selected), np.int64, count)
    lens = np.where(
        steps > 0,
        np.maximum(0, (stops - starts + steps - 1) // steps),
        np.maximum(0, (starts - stops - steps - 1) // -steps),
    )
    bad = np.flatnonzero(lens != widths)
    if bad.size:
        return selected[int(bad[0])][0]
    rows_cat = np.concatenate(
        [np.asarray(rows, dtype=np.int64) for _, _, rows in selected]
    )
    offsets = np.concatenate([[0], np.cumsum(widths)])
    within = np.arange(rows_cat.size, dtype=np.int64) - np.repeat(offsets[:-1], widths)
    expected = np.repeat(starts, widths) + np.repeat(steps, widths) * within
    diff = np.flatnonzero(expected != rows_cat)
    if diff.size:
        entry = int(np.searchsorted(offsets, int(diff[0]), side="right")) - 1
        return selected[entry][0]
    return -1


# --------------------------------------------------------------------------- #
# Tape verification
# --------------------------------------------------------------------------- #
def _verify_tape_inputs_slow(tape) -> None:
    """Exact per-slot input walk; raises with a precise diagnosis."""
    for position, spec in enumerate(tape.inputs):
        if spec.index != position:
            _fail(
                "tape-input-order",
                f"input slot at position {position} carries index {spec.index}",
            )
        if spec.kind not in INPUT_KINDS:
            _fail("tape-input-order", f"input slot {position}: unknown kind {spec.kind!r}")
        if spec.kind == "indicator":
            if spec.var < 0 or spec.value < 0:
                _fail(
                    "tape-input-domain",
                    f"indicator slot {position} has negative var/value "
                    f"({spec.var}, {spec.value})",
                )
        elif not np.isfinite(spec.prob) or spec.prob < 0.0:
            _fail(
                "tape-input-domain",
                f"{spec.kind} slot {position} carries probability {spec.prob!r} "
                "(must be finite and non-negative)",
            )
    _fail("tape-input-order", "input slots are internally inconsistent")


def _verify_tape_inputs(tape) -> None:
    """Vectorized input checks over the tape's precomputed index vectors.

    ``_ind_*``/``_const_*`` are rebuilt deterministically from
    ``tape.inputs`` by ``CompiledTape.__post_init__`` in this process, so
    using them trusts only the constructor, not any shipped payload.  Any
    trip falls back to the exact walk for the error message.
    """
    n_inputs = len(tape.inputs)
    ind_slots = tape._ind_slots
    const_slots = tape._const_slots
    indices = np.concatenate([ind_slots, const_slots])
    ok = (
        indices.size == n_inputs
        and np.array_equal(np.sort(indices), np.arange(n_inputs))
        and (np.diff(ind_slots) > 0).all()
        and (np.diff(const_slots) > 0).all()
        and bool((tape._ind_vars >= 0).all())
        and bool((tape._ind_values >= 0).all())
        and bool(np.isfinite(tape._const_probs).all())
        and bool((tape._const_probs >= 0.0).all())
    )
    if not ok:
        _verify_tape_inputs_slow(tape)


def _dead_scan_slow(tape, n_slots: int) -> int:
    """Exact reverse reachability walk; returns the dead-slot count.

    Raises ``tape-dead-kernel`` naming the first fully dead kernel.  Used
    when the fast all-slots-used check trips — which also happens for tapes
    with individually dead (but tolerated) lanes.
    """
    reachable = np.zeros(n_slots, dtype=bool)
    reachable[tape.root_slot] = True
    n_dead_slots = 0
    for ki in range(len(tape.kernels) - 1, -1, -1):
        kernel = tape.kernels[ki]
        live = reachable[kernel.dest_start : kernel.dest_stop]
        if not live.any():
            _fail(
                "tape-dead-kernel",
                f"tape kernel {ki} ({kernel.op}, width {kernel.dest_stop - kernel.dest_start}) "
                "computes no slot the root transitively reads",
            )
        n_dead_slots += int((~live).sum())
        reachable[kernel.arg0[live]] = True
        reachable[kernel.arg1[live]] = True
    return n_dead_slots


def _verify_tape_slow(tape) -> TapeFacts:
    """The straight-line per-kernel walk, for exact diagnosis of failures."""
    n_inputs = len(tape.inputs)
    n_slots = n_inputs + sum(k.dest_stop - k.dest_start for k in tape.kernels)
    slot_level = np.zeros(n_slots, dtype=np.int64)
    cursor = n_inputs
    previous_level = 0
    for ki, kernel in enumerate(tape.kernels):
        context = f"tape kernel {ki}"
        if kernel.op not in (OP_ADD, OP_MUL):
            _fail("tape-opcode", f"{context}: unknown opcode {kernel.op!r}")
        if kernel.dest_start != cursor or kernel.dest_stop <= kernel.dest_start:
            _fail(
                "tape-dest-contiguity",
                f"{context}: destination [{kernel.dest_start}, {kernel.dest_stop}) "
                f"does not continue the tape at slot {cursor}",
            )
        width = kernel.dest_stop - kernel.dest_start
        for name, arg in (("arg0", kernel.arg0), ("arg1", kernel.arg1)):
            if arg.ndim != 1 or arg.size != width:
                _fail(
                    "tape-operand-shape",
                    f"{context}: {name} has shape {arg.shape}, expected ({width},)",
                )
            if arg.size and (int(arg.min()) < 0 or int(arg.max()) >= kernel.dest_start):
                lane = int(np.argmax((arg < 0) | (arg >= kernel.dest_start)))
                _fail(
                    "tape-def-before-use",
                    f"{context}: {name} lane {lane} reads slot {int(arg[lane])}, "
                    f"which is not defined before slot {kernel.dest_start}",
                )
        lane_levels = 1 + np.maximum(slot_level[kernel.arg0], slot_level[kernel.arg1])
        if not np.all(lane_levels == kernel.level):
            lane = int(np.argmax(lane_levels != kernel.level))
            _fail(
                "tape-level",
                f"{context}: recorded level {kernel.level} but lane {lane} has "
                f"ASAP level {int(lane_levels[lane])}",
            )
        if kernel.level < previous_level:
            _fail(
                "tape-level",
                f"{context}: level {kernel.level} decreases from {previous_level}",
            )
        slot_level[kernel.dest_start : kernel.dest_stop] = kernel.level
        cursor = kernel.dest_stop
        previous_level = kernel.level
    if not 0 <= tape.root_slot < max(n_slots, 1):
        _fail("tape-root", f"root slot {tape.root_slot} outside [0, {n_slots})")
    n_dead_slots = _dead_scan_slow(tape, n_slots)
    return TapeFacts(
        n_inputs=n_inputs,
        n_operations=n_slots - n_inputs,
        n_kernels=len(tape.kernels),
        n_levels=tape.kernels[-1].level if tape.kernels else 0,
        n_dead_slots=n_dead_slots,
    )


def verify_tape(tape) -> TapeFacts:
    """Statically verify a :class:`~repro.spn.compiled.CompiledTape`.

    Raises :class:`VerificationError` on the first violated rule; returns
    the established :class:`TapeFacts` otherwise.
    """
    _verify_tape_inputs(tape)
    n_inputs = len(tape.inputs)
    kernels = tape.kernels
    n_kernels = len(kernels)
    if not n_kernels:
        if not 0 <= tape.root_slot < max(n_inputs, 1):
            _fail("tape-root", f"root slot {tape.root_slot} outside [0, {n_inputs})")
        return TapeFacts(n_inputs, 0, 0, 0, 0)

    # Per-kernel scalar checks (opcode, contiguity, operand shape): one
    # structured pass collects every scalar, whole-array comparisons judge
    # them, and any trip re-runs the exact walk for its message.
    k_rec = np.fromiter(
        (
            (
                k.dest_start,
                k.dest_stop,
                k.level,
                k.op == OP_ADD or k.op == OP_MUL,
                k.op == OP_MUL,
                k.arg0.ndim == 1 and k.arg0.size == k.dest_stop - k.dest_start,
                k.arg1.ndim == 1 and k.arg1.size == k.dest_stop - k.dest_start,
            )
            for k in kernels
        ),
        dtype=[
            ("start", np.int64),
            ("stop", np.int64),
            ("level", np.int64),
            ("op", bool),
            ("mul", bool),
            ("a0", bool),
            ("a1", bool),
        ],
        count=n_kernels,
    )
    # Memoized for the plan verifier's boundary alignment (it needs each
    # tape kernel's stop and opcode); faithful to the kernel list as read
    # this moment, so a later structural edit — which builds a fresh tape —
    # never sees it.
    tape._statics_krec = k_rec
    starts = k_rec["start"]
    stops = k_rec["stop"]
    contiguous = (
        starts[0] == n_inputs
        and bool((stops > starts).all())
        and bool((starts[1:] == stops[:-1]).all())
    )
    if not (
        contiguous and k_rec["op"].all() and k_rec["a0"].all() and k_rec["a1"].all()
    ):
        return _verify_tape_slow(tape)
    widths = stops - starts
    levels = k_rec["level"]
    n_slots = int(stops[-1])

    # Lane-vector checks: def-before-use, then ASAP level consistency.
    arg0_all, arg1_all = _lane_args(tape)
    lane_start = np.repeat(starts, widths)
    if ((arg0_all < 0) | (arg0_all >= lane_start)).any() or (
        (arg1_all < 0) | (arg1_all >= lane_start)
    ).any():
        return _verify_tape_slow(tape)
    slot_level = np.zeros(n_slots, dtype=np.int64)
    slot_level[n_inputs:] = np.repeat(levels, widths)
    lane_levels = 1 + np.maximum(slot_level[arg0_all], slot_level[arg1_all])
    if not np.array_equal(lane_levels, slot_level[n_inputs:]) or (
        np.diff(levels) < 0
    ).any():
        return _verify_tape_slow(tape)

    if not 0 <= tape.root_slot < n_slots:
        _fail("tape-root", f"root slot {tape.root_slot} outside [0, {n_slots})")

    # Root reachability, fast form.  If every operation slot is read by some
    # later kernel (or is the root), a downward induction over slot numbers
    # shows every slot is root-reachable and no dead lane exists: any
    # unreachable component of a finite DAG must contain an unread sink.
    # Tapes with unread lanes take the exact reverse walk, which tolerates
    # dead lanes but rejects fully dead kernels.
    used = np.zeros(n_slots, dtype=bool)
    used[arg0_all] = True
    used[arg1_all] = True
    used[tape.root_slot] = True
    if used[n_inputs:].all():
        n_dead_slots = 0
    else:
        n_dead_slots = _dead_scan_slow(tape, n_slots)

    return TapeFacts(
        n_inputs=n_inputs,
        n_operations=n_slots - n_inputs,
        n_kernels=n_kernels,
        n_levels=int(levels[-1]),
        n_dead_slots=n_dead_slots,
    )


# --------------------------------------------------------------------------- #
# Canonical input values
# --------------------------------------------------------------------------- #
@dataclass
class _SignatureLookup:
    """Sorted unique-signature tables for encode-record lookups.

    One entry per *unique* input value signature (not per slot) — built
    with :func:`numpy.unique`, queried with ``searchsorted``.  Replaces the
    per-slot dict the general walk used to build eagerly: real tapes carry
    thousands of distinct weight values but plans only look up the handful
    of signatures their encode records mention.
    """

    ind_keys: np.ndarray  # sorted unique var*base+value keys
    ind_slots: np.ndarray  # canonical (lowest) slot per key
    base: int  # value packing radix (values are < base)
    const_probs: np.ndarray  # sorted unique constant probabilities
    const_slots: np.ndarray  # canonical (lowest) slot per probability

    def indicator(self, var: int, value: int) -> Optional[int]:
        if var < 0 or not 0 <= value < self.base:
            return None
        position = int(np.searchsorted(self.ind_keys, var * self.base + value))
        if position < self.ind_keys.size and self.ind_keys[position] == var * self.base + value:
            return int(self.ind_slots[position])
        return None

    def constant(self, prob: float) -> Optional[int]:
        position = int(np.searchsorted(self.const_probs, prob))
        if position < self.const_probs.size and self.const_probs[position] == prob:
            return int(self.const_slots[position])
        return None


def _canonical_inputs(
    tape, n_slots: Optional[int] = None
) -> Tuple[np.ndarray, _SignatureLookup, np.ndarray, np.ndarray]:
    """Canonical value ids for input slots plus constant-probability lookup.

    Returns ``(canon, lookup, is_const, const_prob)`` where ``canon`` maps
    every tape slot to the id of the first slot carrying the same *value*
    (operation slots map to themselves — each is defined once).
    """
    if n_slots is None:
        n_slots = tape.n_slots
    # The tape constructor precomputed these tables from its own input-slot
    # vectors (``CompiledTape.__post_init__``), so reading them trusts only
    # in-process code; rebuild them in place only when the cached shape
    # disagrees with the slot count under verification.
    tables = getattr(tape, "_canon_tables", None)
    if tables is None or tables[0].size != n_slots:
        tables = canonical_value_tables(
            tape._ind_slots,
            tape._ind_vars,
            tape._ind_values,
            tape._const_slots,
            tape._const_probs,
            n_slots,
        )
    canon, ind_keys, ind_first, base, uniq_probs, const_first, is_const, const_prob = tables
    lookup = _SignatureLookup(
        ind_keys=ind_keys,
        ind_slots=ind_first,
        base=base,
        const_probs=uniq_probs,
        const_slots=const_first,
    )
    return canon, lookup, is_const, const_prob


def _slice_rows(view: Optional[slice], rows: np.ndarray, what: str, context: str) -> None:
    """A precomputed strided view must address exactly its row array."""
    if view is None:
        return
    expanded = np.arange(view.start, view.stop, view.step or 1, dtype=np.intp)
    if not np.array_equal(expanded, rows):
        _fail(
            "plan-slice-mismatch",
            f"{context}: {what} strided view {view} does not match its row array",
        )


# --------------------------------------------------------------------------- #
# Plan verification
# --------------------------------------------------------------------------- #
def _verify_memory_plan_general(tape, plan, all_sources: np.ndarray) -> PlanFacts:
    """The exhaustive per-kernel walk over an arbitrary source layout.

    Handles every legal plan (including ones whose ``source_slots`` are not
    the identity permutation) and produces precise per-lane diagnoses; the
    identity fast path delegates here whenever the layout is unusual or a
    vector check needs an exact error message.
    """
    n_inputs = tape.n_inputs
    n_slots = tape.n_slots
    n_physical = plan.n_physical

    counts = (
        np.bincount(all_sources, minlength=n_slots)
        if all_sources.size
        else np.zeros(n_slots, dtype=np.int64)
    )
    if all_sources.size and (
        int(all_sources.min()) < n_inputs or int(all_sources.max()) >= n_slots
    ):
        _fail("plan-coverage", "a planned kernel claims to compute an input slot")
    bad = np.flatnonzero(counts[n_inputs:] != 1)
    if bad.size:
        slot = int(bad[0]) + n_inputs
        _fail(
            "plan-coverage",
            f"operation slot {slot} is computed {int(counts[slot])} times "
            "(every operation slot must be computed exactly once)",
        )

    # --- re-derive the fusion grouping from source_slots ------------------- #
    # Tape kernel owning each operation slot, for decomposing each planned
    # kernel's source run into whole source-kernel destination intervals.
    owner = np.empty(n_slots - n_inputs, dtype=np.int64)
    for ki, kernel in enumerate(tape.kernels):
        owner[kernel.dest_start - n_inputs : kernel.dest_stop - n_inputs] = ki

    members_of: List[List[int]] = []
    group_args: List[Tuple[np.ndarray, np.ndarray]] = []
    n_broadcast_lanes = 0
    for gi, planned in enumerate(plan.kernels):
        context = f"plan kernel {gi}"
        if planned.op not in (OP_ADD, OP_MUL):
            _fail("plan-group-structure", f"{context}: unknown opcode {planned.op!r}")
        width = planned.dest_stop - planned.dest_start
        if not (0 <= planned.dest_start < planned.dest_stop <= n_physical):
            _fail(
                "plan-scalar-range",
                f"{context}: destination [{planned.dest_start}, {planned.dest_stop}) "
                f"outside the {n_physical}-row buffer",
            )
        sources = planned.source_slots
        if sources.size != width:
            _fail(
                "plan-group-structure",
                f"{context}: {sources.size} source slots for width {width}",
            )
        members: List[int] = []
        position = 0
        while position < sources.size:
            slot = int(sources[position])
            source_kernel = tape.kernels[int(owner[slot - n_inputs])]
            run = source_kernel.dest_stop - source_kernel.dest_start
            if slot != source_kernel.dest_start or not np.array_equal(
                sources[position : position + run],
                np.arange(slot, slot + run, dtype=sources.dtype),
            ):
                _fail(
                    "plan-group-structure",
                    f"{context}: source slots at offset {position} do not form a "
                    "whole tape-kernel destination run",
                )
            if source_kernel.op != planned.op:
                _fail(
                    "plan-group-structure",
                    f"{context}: fuses a {source_kernel.op!r} kernel into a "
                    f"{planned.op!r} group",
                )
            members.append(int(owner[slot - n_inputs]))
            position += run
        if not plan.fused and len(members) != 1:
            _fail(
                "plan-group-structure",
                f"{context}: {len(members)} fused kernels in an unfused plan",
            )
        members_of.append(members)
        arg0 = np.concatenate([tape.kernels[ki].arg0 for ki in members])
        arg1 = np.concatenate([tape.kernels[ki].arg1 for ki in members])
        group_args.append((arg0, arg1))
        for const in (planned.const_arg0, planned.const_arg1):
            if const is not None:
                n_broadcast_lanes += width

    # --- independent liveness (mirrors the allocator's accounting) --------- #
    n_groups = len(plan.kernels)
    first_use = np.full(n_slots, -1, dtype=np.int64)
    last_use = np.full(n_slots, -1, dtype=np.int64)
    placed_at = np.full(n_slots, -1, dtype=np.int64)
    for gi, planned in enumerate(plan.kernels):
        placed_at[planned.source_slots] = gi
        for args, const in (
            (group_args[gi][0], planned.const_arg0),
            (group_args[gi][1], planned.const_arg1),
        ):
            if const is not None:  # broadcast lanes are never materialized
                continue
            fresh = first_use[args] < 0
            if fresh.any():
                first_use[args[fresh]] = gi
            last_use[args] = gi
    last_use[tape.root_slot] = n_groups
    placed_at[:n_inputs] = np.where(first_use[:n_inputs] >= 0, first_use[:n_inputs], -1)
    alive = placed_at >= 0
    effective_last = np.where(last_use >= 0, last_use, placed_at)
    freed_at = effective_last + 1  # retired at the start of this kernel
    placed_hist = np.bincount(placed_at[alive], minlength=n_groups + 2)
    freed_hist = np.bincount(
        np.minimum(freed_at[alive], n_groups + 1), minlength=n_groups + 2
    )
    in_use = np.cumsum(placed_hist[: n_groups] - freed_hist[: n_groups])
    derived_max_live = int(in_use.max()) if in_use.size else 0
    if derived_max_live != plan.max_live:
        _fail(
            "plan-liveness",
            f"independently derived liveness peak {derived_max_live} does not "
            f"match the plan's recorded max_live {plan.max_live}",
        )

    # --- symbolic replay over the physical buffer -------------------------- #
    canon, lookup, is_const, const_prob = _canonical_inputs(tape, n_slots)
    content = np.full(n_physical, -1, dtype=np.int64)
    n_encoded_inputs = 0
    for gi, planned in enumerate(plan.kernels):
        context = f"plan kernel {gi}"
        arriving: List[int] = []
        if planned.encode is not None:
            encode = planned.encode
            for what, rows in (("ind_rows", encode.ind_rows), ("const_rows", encode.const_rows)):
                if rows.size and (int(rows.min()) < 0 or int(rows.max()) >= n_physical):
                    _fail(
                        "plan-encode-unknown-input",
                        f"{context}: encode {what} references a row outside the buffer",
                    )
            _slice_rows(encode.ind_slice, encode.ind_rows, "encode ind_rows", context)
            _slice_rows(encode.const_slice, encode.const_rows, "encode const_rows", context)
            for row, var, value in zip(encode.ind_rows, encode.ind_vars, encode.ind_values):
                slot = lookup.indicator(int(var), int(value))
                if slot is None:
                    _fail(
                        "plan-encode-unknown-input",
                        f"{context}: encodes indicator (var {int(var)}, value "
                        f"{int(value)}) which matches no tape input slot",
                    )
                content[row] = slot
                arriving.append(slot)
            for row, prob in zip(encode.const_rows, encode.const_probs):
                slot = lookup.constant(float(prob))
                if slot is None:
                    _fail(
                        "plan-encode-unknown-input",
                        f"{context}: encodes constant {float(prob)!r} which matches "
                        "no tape input slot",
                    )
                content[row] = slot
                arriving.append(slot)
            n_encoded_inputs += len(arriving)
        expected_fresh = np.flatnonzero(first_use[:n_inputs] == gi)
        if sorted(arriving) != sorted(canon[expected_fresh].tolist()):
            _fail(
                "plan-encode-set-mismatch",
                f"{context}: encoded inputs do not match the {expected_fresh.size} "
                "input slots first read by this kernel",
            )
        width = planned.dest_stop - planned.dest_start
        for name, rows, view, const, args in (
            ("arg0", planned.arg0, planned.arg0_slice, planned.const_arg0, group_args[gi][0]),
            ("arg1", planned.arg1, planned.arg1_slice, planned.const_arg1, group_args[gi][1]),
        ):
            if const is not None:
                column = const.ravel()
                if column.size != width:
                    _fail(
                        "plan-broadcast-operand",
                        f"{context}: {name} broadcast column has {column.size} "
                        f"lanes for width {width}",
                    )
                if not is_const[args].all():
                    lane = int(np.argmax(~is_const[args]))
                    _fail(
                        "plan-broadcast-operand",
                        f"{context}: {name} lane {lane} broadcasts slot "
                        f"{int(args[lane])}, which is not a constant input",
                    )
                if not np.array_equal(column, const_prob[args]):
                    lane = int(np.argmax(column != const_prob[args]))
                    _fail(
                        "plan-broadcast-operand",
                        f"{context}: {name} lane {lane} broadcasts {column[lane]!r} "
                        f"but slot {int(args[lane])} carries {const_prob[args[lane]]!r}",
                    )
                continue
            if rows.size != width:
                _fail(
                    "plan-operand-mismatch",
                    f"{context}: {name} has {rows.size} rows for width {width}",
                )
            if rows.size and (int(rows.min()) < 0 or int(rows.max()) >= n_physical):
                _fail(
                    "plan-operand-mismatch",
                    f"{context}: {name} references a row outside the buffer",
                )
            _slice_rows(view, rows, name, context)
            expected = canon[args]
            got = content[rows]
            if not np.array_equal(got, expected):
                lane = int(np.argmax(got != expected))
                held = int(got[lane])
                held_desc = "nothing" if held < 0 else f"slot {held}"
                _fail(
                    "plan-operand-mismatch",
                    f"{context}: {name} lane {lane} reads physical row "
                    f"{int(rows[lane])} holding {held_desc}, but the tape needs "
                    f"slot {int(expected[lane])}",
                )
        content[planned.dest_start : planned.dest_stop] = planned.source_slots

    if content[plan.root_phys] != canon[tape.root_slot]:
        held = int(content[plan.root_phys])
        held_desc = "nothing" if held < 0 else f"slot {held}"
        _fail(
            "plan-root",
            f"after the final kernel, root row {plan.root_phys} holds {held_desc} "
            f"but the root is slot {tape.root_slot}",
        )
    final = plan.kernels[-1]
    direct = final.dest_stop - final.dest_start == 1 and final.dest_start == plan.root_phys
    if bool(plan.root_direct) != direct:
        _fail(
            "plan-root",
            f"root_direct flag is {bool(plan.root_direct)} but the final kernel "
            f"{'writes' if direct else 'does not write'} the root row directly",
        )

    return PlanFacts(
        n_kernels=n_groups,
        n_physical=n_physical,
        max_live=plan.max_live,
        fusion=len(tape.kernels) / n_groups,
        n_encoded_inputs=n_encoded_inputs,
        n_broadcast_lanes=n_broadcast_lanes,
    )


def _verify_memory_plan_identity(tape, plan, n_inputs: int, n_slots: int) -> PlanFacts:
    """Vectorized verification of the identity source layout.

    Every real allocator emits planned kernels whose concatenated
    ``source_slots`` are exactly ``n_inputs..n_slots`` in order (fusion only
    merges *adjacent* runs).  For that layout every rule reduces to
    whole-array passes; any violation that needs a per-lane diagnosis
    delegates to :func:`_verify_memory_plan_general` for the message.
    """
    n_ops = n_slots - n_inputs
    n_physical = plan.n_physical
    groups = plan.kernels
    ng = len(groups)
    nk = len(tape.kernels)

    def _exact() -> PlanFacts:
        all_sources = np.arange(n_inputs, n_slots, dtype=np.int64)
        return _verify_memory_plan_general(tape, plan, all_sources)

    # --- group structure, vectorized --------------------------------------- #
    # The plan constructor precomputed every per-kernel scalar and
    # concatenation this path needs (``MemoryPlan.__post_init__``); a plan
    # object lacking them — or whose kernel list was mutated in place after
    # construction — takes the exhaustive walk instead.
    g_rec = getattr(plan, "_kernel_meta", None)
    if g_rec is None or g_rec.size != ng or (g_rec["src"] < 0).any():
        return _exact()
    g_start = g_rec["start"]
    g_stop = g_rec["stop"]
    g_width = g_stop - g_start
    g_is_mul = g_rec["mul"]
    g_src_size = g_rec["src"]
    has_c0 = g_rec["c0"]
    has_c1 = g_rec["c1"]
    if not (g_is_mul | g_rec["add"]).all():
        gi = int(np.argmax(~(g_is_mul | g_rec["add"])))
        _fail("plan-group-structure", f"plan kernel {gi}: unknown opcode {groups[gi].op!r}")
    if not ((0 <= g_start) & (g_start < g_stop) & (g_stop <= n_physical)).all():
        gi = int(np.argmax(~((0 <= g_start) & (g_start < g_stop) & (g_stop <= n_physical))))
        _fail(
            "plan-scalar-range",
            f"plan kernel {gi}: destination [{int(g_start[gi])}, {int(g_stop[gi])}) "
            f"outside the {n_physical}-row buffer",
        )
    if (g_src_size != g_width).any():
        gi = int(np.argmax(g_src_size != g_width))
        _fail(
            "plan-group-structure",
            f"plan kernel {gi}: {int(g_src_size[gi])} source slots for width "
            f"{int(g_width[gi])}",
        )
    t_rec = getattr(tape, "_statics_krec", None)
    if t_rec is None or t_rec.size != nk:
        t_rec = np.fromiter(
            ((k.dest_stop, k.op == OP_MUL) for k in tape.kernels),
            dtype=[("stop", np.int64), ("mul", bool)],
            count=nk,
        )
    t_is_mul = t_rec["mul"]
    # Plan-only replay geometry, precomputed by the constructor alongside
    # the kernel metadata above (same trust argument, same staleness
    # canaries: shape disagreements take the exhaustive walk).
    replay = getattr(plan, "_replay_meta", None)
    if (
        replay is None
        or replay[0] != 3 * ng + 3
        or replay[1] != n_slots + 1
        or replay[2].size != n_ops
        or replay[3].size != ng + 1
    ):
        return _exact()
    (
        period,
        pack,
        lane_group,
        g_bounds,
        write_order,
        sorted_write_base,
        lane_c0,
        lane_c1,
        open_g0,
        open_g1,
        read_rows,
        read_base,
    ) = replay
    # The tape already passed verify_tape, so destinations are contiguous
    # from n_inputs and dest_stop alone yields the kernel boundaries.
    t_bounds = np.concatenate([[0], t_rec["stop"] - n_inputs])
    # Every group boundary must land on a tape-kernel boundary: groups fuse
    # whole adjacent kernels or they are not the identity layout's grouping.
    pos = np.searchsorted(t_bounds, g_bounds)
    if (
        g_bounds[-1] != n_ops
        or pos[-1] >= t_bounds.size
        or not np.array_equal(t_bounds[pos], g_bounds)
    ):
        return _exact()
    members = np.diff(pos)  # tape kernels fused into each group
    if not plan.fused and (members != 1).any():
        gi = int(np.argmax(members != 1))
        _fail(
            "plan-group-structure",
            f"plan kernel {gi}: {int(members[gi])} fused kernels in an unfused plan",
        )
    kernel_group = np.repeat(np.arange(ng), members)
    if (t_is_mul != g_is_mul[kernel_group]).any():
        return _exact()
    n_broadcast_lanes = int((g_width * (has_c0.astype(np.int64) + has_c1)).sum())

    # --- lane vectors ------------------------------------------------------- #
    # The broadcast-free ("open") lanes of each side feed both the liveness
    # derivation and the replay's read stream; the group-side masks are
    # plan-only and already unpacked, so only the tape's lane args are
    # masked here.
    arg0_all, arg1_all = _lane_args(tape)
    open_a0 = arg0_all if lane_c0 is None else arg0_all[~lane_c0]
    open_a1 = arg1_all if lane_c1 is None else arg1_all[~lane_c1]

    # --- independent liveness ----------------------------------------------- #
    sentinel = ng + 1
    first_use = np.full(n_slots, sentinel, dtype=np.int64)
    last_use = np.full(n_slots, -1, dtype=np.int64)
    scratch = np.empty(n_slots, dtype=np.int64)
    for args, gids in ((open_a0, open_g0), (open_a1, open_g1)):
        # gids ascend, so forward assignment keeps the last (max) group and
        # reversed assignment keeps the first (min) group per slot.
        scratch.fill(-1)
        scratch[args] = gids
        np.maximum(last_use, scratch, out=last_use)
        scratch.fill(sentinel)
        scratch[args[::-1]] = gids[::-1]
        np.minimum(first_use, scratch, out=first_use)
    first_use[first_use == sentinel] = -1
    placed_at = np.full(n_slots, -1, dtype=np.int64)
    placed_at[n_inputs:] = lane_group
    last_use[tape.root_slot] = ng
    placed_at[:n_inputs] = np.where(first_use[:n_inputs] >= 0, first_use[:n_inputs], -1)
    alive = placed_at >= 0
    effective_last = np.where(last_use >= 0, last_use, placed_at)
    freed_at = effective_last + 1
    placed_hist = np.bincount(placed_at[alive], minlength=ng + 2)
    freed_hist = np.bincount(np.minimum(freed_at[alive], ng + 1), minlength=ng + 2)
    in_use = np.cumsum(placed_hist[:ng] - freed_hist[:ng])
    derived_max_live = int(in_use.max()) if in_use.size else 0
    if derived_max_live != plan.max_live:
        _fail(
            "plan-liveness",
            f"independently derived liveness peak {derived_max_live} does not "
            f"match the plan's recorded max_live {plan.max_live}",
        )

    # --- encode records, in bulk -------------------------------------------- #
    canon, lookup, is_const, const_prob = _canonical_inputs(tape, n_slots)
    (
        ind_g,
        ind_rows,
        ind_vars,
        ind_values,
        const_g,
        const_rows,
        const_probs,
        enc_view_pairs,
    ) = plan._encode_meta
    ind_rows = ind_rows.astype(np.int64, copy=False)
    const_rows = const_rows.astype(np.int64, copy=False)
    n_encoded_inputs = int(ind_rows.size + const_rows.size)
    if (
        ((ind_rows < 0) | (ind_rows >= n_physical)).any()
        or ((const_rows < 0) | (const_rows >= n_physical)).any()
    ):
        return _exact()
    # Bulk signature lookups against the sorted unique tables.
    ind_canon = np.zeros(ind_rows.size, dtype=np.int64)
    if ind_rows.size:
        in_domain = (ind_vars >= 0) & (ind_values >= 0) & (ind_values < lookup.base)
        if lookup.ind_keys.size:
            keys = ind_vars * lookup.base + ind_values
            position = np.minimum(
                np.searchsorted(lookup.ind_keys, keys), lookup.ind_keys.size - 1
            )
            found = in_domain & (lookup.ind_keys[position] == keys)
            ind_canon = lookup.ind_slots[position]
        else:
            found = np.zeros(ind_rows.size, dtype=bool)
        if not found.all():
            i = int(np.argmax(~found))
            _fail(
                "plan-encode-unknown-input",
                f"plan kernel {int(ind_g[i])}: encodes indicator (var "
                f"{int(ind_vars[i])}, value {int(ind_values[i])}) which matches "
                "no tape input slot",
            )
    const_canon = np.zeros(const_rows.size, dtype=np.int64)
    if const_rows.size:
        if lookup.const_probs.size:
            position = np.minimum(
                np.searchsorted(lookup.const_probs, const_probs),
                lookup.const_probs.size - 1,
            )
            # NaN probes never compare equal, so they fail here as unknown.
            found = lookup.const_probs[position] == const_probs
            const_canon = lookup.const_slots[position]
        else:
            found = np.zeros(const_rows.size, dtype=bool)
        if not found.all():
            i = int(np.argmax(~found))
            _fail(
                "plan-encode-unknown-input",
                f"plan kernel {int(const_g[i])}: encodes constant "
                f"{float(const_probs[i])!r} which matches no tape input slot",
            )

    # Arriving multiset per group must equal the canonical ids of the input
    # slots first read there (lexsort both sides, compare once).
    arrive_g = np.concatenate([ind_g, const_g])
    arrive_c = np.concatenate([ind_canon, const_canon])
    expected_slots = np.flatnonzero(first_use[:n_inputs] >= 0)
    expected_g = first_use[expected_slots]
    expected_c = canon[expected_slots]
    a_order = np.lexsort((arrive_c, arrive_g))
    e_order = np.lexsort((expected_c, expected_g))
    if arrive_g.size != expected_g.size or not (
        np.array_equal(arrive_g[a_order], expected_g[e_order])
        and np.array_equal(arrive_c[a_order], expected_c[e_order])
    ):
        count_a = np.bincount(arrive_g, minlength=ng + 1)
        count_e = np.bincount(expected_g, minlength=ng + 1)
        mismatch = np.flatnonzero(count_a != count_e)
        if mismatch.size:
            gi = int(mismatch[0])
        else:
            diff = (arrive_c[a_order] != expected_c[e_order]) | (
                arrive_g[a_order] != expected_g[e_order]
            )
            gi = int(arrive_g[a_order][int(np.argmax(diff))])
        _fail(
            "plan-encode-set-mismatch",
            f"plan kernel {gi}: encoded inputs do not match the "
            f"{int(count_e[gi])} input slots first read by this kernel",
        )

    # --- broadcast constant columns ----------------------------------------- #
    const_meta0, const_meta1 = plan._const_meta
    for side, lane_mask, has_const, args_all, (sizes, columns) in (
        ("arg0", lane_c0, has_c0, arg0_all, const_meta0),
        ("arg1", lane_c1, has_c1, arg1_all, const_meta1),
    ):
        if not has_const.any():
            continue
        const_groups = np.flatnonzero(has_const)
        if sizes.size != const_groups.size:
            return _exact()
        if (sizes != g_width[const_groups]).any():
            bad = int(np.argmax(sizes != g_width[const_groups]))
            gi = int(const_groups[bad])
            _fail(
                "plan-broadcast-operand",
                f"plan kernel {gi}: {side} broadcast column has {int(sizes[bad])} "
                f"lanes for width {int(g_width[gi])}",
            )
        args = args_all[lane_mask]
        if not is_const[args].all() or not np.array_equal(columns, const_prob[args]):
            return _exact()

    # --- symbolic replay as a last-write-before-read query ------------------ #
    # Each write is packed into one int64 ``(row*period + time)*pack + value``
    # so a sorted event log answers "last write on this row" via
    # ``searchsorted`` (a read's packed key carries value 0, so equal-time
    # writes sort strictly after it, as they must — a group's own
    # destination write is not visible to its reads).  The key bases and
    # their sort order are plan-only and precomputed; only the canonical
    # write values are joined in here, and they never perturb the order
    # because values are strictly below ``pack``.
    if (sorted_write_base[1:] == sorted_write_base[:-1]).any():
        # Two writes to the same row at the same event time: the sort
        # cannot tell which lands last, so let the exhaustive walk decide.
        return _exact()
    write_values = np.concatenate(
        [ind_canon, const_canon, np.arange(n_inputs, n_slots, dtype=np.int64)]
    )
    if write_values.size != write_order.size:
        return _exact()
    write_packed = sorted_write_base + write_values[write_order]

    operand_meta0, operand_meta1 = plan._operand_meta
    for side, has_const, (sizes, _rows, _pairs) in (
        ("arg0", has_c0, operand_meta0),
        ("arg1", has_c1, operand_meta1),
    ):
        open_groups = np.flatnonzero(~has_const)
        if sizes.size != open_groups.size:
            return _exact()
        if (sizes != g_width[open_groups]).any():
            bad = int(np.argmax(sizes != g_width[open_groups]))
            gi = int(open_groups[bad])
            _fail(
                "plan-operand-mismatch",
                f"plan kernel {gi}: {side} has {int(sizes[bad])} rows for width "
                f"{int(g_width[gi])}",
            )
    if read_rows.size and ((read_rows < 0) | (read_rows >= n_physical)).any():
        return _exact()
    if read_rows.size != open_g0.size + open_g1.size:
        return _exact()
    # All strided views (encode and operand) in one combined pass: the plan
    # constructor pre-expanded every slice next to the rows it claims, so
    # consistency is a single comparison; re-expand per pair only when the
    # precomputation is missing.
    view_check = getattr(plan, "_view_check", None)
    if view_check is not None:
        views_ok = np.array_equal(view_check[0], view_check[1])
    else:
        views_ok = (
            _first_mismatched_slice(enc_view_pairs + operand_meta0[2] + operand_meta1[2]) < 0
        )
    if not views_ok:
        return _exact()
    read_expected = np.concatenate([canon[open_a0], canon[open_a1]])
    probe = np.searchsorted(write_packed, read_base) - 1
    clipped = np.maximum(probe, 0)
    probed = write_packed[clipped]
    ok = (
        (probe >= 0)
        & (probed // (period * pack) == read_rows)
        & (probed % pack == read_expected)
    )
    if not ok.all():
        return _exact()

    root_probe = int(
        np.searchsorted(write_packed, (plan.root_phys * period + 3 * ng) * pack) - 1
    )
    root_held = (
        int(write_packed[root_probe] % pack)
        if root_probe >= 0
        and int(write_packed[root_probe] // (period * pack)) == plan.root_phys
        else -1
    )
    if root_held != int(canon[tape.root_slot]):
        held_desc = "nothing" if root_held < 0 else f"slot {root_held}"
        _fail(
            "plan-root",
            f"after the final kernel, root row {plan.root_phys} holds {held_desc} "
            f"but the root is slot {tape.root_slot}",
        )
    final = groups[-1]
    direct = final.dest_stop - final.dest_start == 1 and final.dest_start == plan.root_phys
    if bool(plan.root_direct) != direct:
        _fail(
            "plan-root",
            f"root_direct flag is {bool(plan.root_direct)} but the final kernel "
            f"{'writes' if direct else 'does not write'} the root row directly",
        )

    return PlanFacts(
        n_kernels=ng,
        n_physical=n_physical,
        max_live=plan.max_live,
        fusion=nk / ng,
        n_encoded_inputs=n_encoded_inputs,
        n_broadcast_lanes=n_broadcast_lanes,
    )


def verify_memory_plan(tape, plan) -> PlanFacts:
    """Statically verify that ``plan`` is a faithful allocation of ``tape``.

    Assumes ``tape`` itself already passed :func:`verify_tape` (use
    :func:`verify_compiled` for both).  Raises :class:`VerificationError`
    on the first violated rule.
    """
    n_inputs = tape.n_inputs
    n_slots = tape.n_slots
    if (
        plan.n_slots != n_slots
        or plan.n_inputs != n_inputs
        or plan.n_source_kernels != len(tape.kernels)
    ):
        _fail(
            "plan-shape-mismatch",
            f"plan describes {plan.n_inputs}+{plan.n_slots - plan.n_inputs} slots "
            f"over {plan.n_source_kernels} source kernels; tape has "
            f"{n_inputs}+{n_slots - n_inputs} slots over {len(tape.kernels)} kernels",
        )
    n_physical = plan.n_physical
    if n_physical < 1 or n_physical > n_slots:
        _fail(
            "plan-scalar-range",
            f"n_physical {n_physical} outside [1, n_slots={n_slots}]",
        )
    if not 0 <= plan.root_phys < n_physical:
        _fail(
            "plan-scalar-range",
            f"root_phys {plan.root_phys} outside [0, {n_physical})",
        )
    if not 1 <= plan.max_live <= n_physical:
        _fail(
            "plan-scalar-range",
            f"max_live {plan.max_live} outside [1, n_physical={n_physical}]",
        )
    if not plan.kernels:
        _fail("plan-scalar-range", "plan has no kernels")

    # The identity layout (the only one real allocators emit — fusion merges
    # adjacent runs, never reorders) trivially satisfies plan-coverage and
    # admits whole-array checks for everything else.  The constructor
    # precomputed the flag against the plan's own slot counts, which the
    # shape check above proved equal to the tape's.
    if tape.kernels and getattr(plan, "_sources_identity", False):
        return _verify_memory_plan_identity(tape, plan, n_inputs, n_slots)
    all_sources = getattr(plan, "_all_source_slots", None)
    if all_sources is None:
        all_sources = np.concatenate([k.source_slots for k in plan.kernels])
    if tape.kernels and np.array_equal(
        all_sources, np.arange(n_inputs, n_slots, dtype=all_sources.dtype)
    ):
        return _verify_memory_plan_identity(tape, plan, n_inputs, n_slots)
    return _verify_memory_plan_general(tape, plan, all_sources)


def verify_compiled(tape, plan=None) -> Tuple[TapeFacts, Optional[PlanFacts]]:
    """Verify a tape and (when given) its memory plan in one call.

    ``plan=None`` verifies the tape alone — the legacy execution mode runs
    straight off the tape, so that is exactly its static contract.
    """
    tape_facts = verify_tape(tape)
    plan_facts = verify_memory_plan(tape, plan) if plan is not None else None
    return tape_facts, plan_facts
