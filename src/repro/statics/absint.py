"""Abstract interpretation of compiled tapes: interval and sign domains.

Runs the tape once over *abstract* values instead of evidence — one interval
per slot — and derives facts that hold for **every** evidence batch:

* **Linear interval domain** — each slot carries ``[lo, hi]`` bounds.
  Indicators are ``[0, 1]`` (hit/miss/marginalized), constants are points,
  sums add and products multiply endpoint-wise (sound because
  :func:`~repro.statics.verifier.verify_tape` guarantees non-negative
  inputs, so both operations are monotone).  When the root's upper bound is
  ``<= 1`` the tape is proved **normalized-by-construction**: its log-domain
  output can never exceed ``0`` on any evidence, the invariant the analysis
  query layer's normalizers rely on.
* **Sign / zero tracking** — whether a slot can be *exactly* zero (an
  indicator miss propagating through products).  A zero-capable root means
  ``-inf`` is reachable in the log domain; that is well-defined (``log 0``)
  and ``logaddexp`` absorbs it exactly, so it is reported as a fact, not an
  error.  ``NaN`` in the log domain would require ``inf - inf``, which needs
  a linear overflow first — tracked via the interval upper bounds.
* **Positive-magnitude log bounds** — for each slot, a lower bound on
  ``log(v)`` over every *strictly positive* value ``v`` the slot can take.
  Products add these bounds, so deep product chains drive the bound down
  linearly with depth; when the root's bound falls below the smallest
  positive normal double (``log ≈ -708``), a linear-domain pass may
  underflow a genuinely non-zero probability to ``0.0`` — the bug class a
  conditional query hit in this repository's history (joint/evidence
  division by an underflowed denominator), now flagged at compile time and
  answered by routing through the log domain.

The pass is vectorized per tape kernel (a few hundred NumPy calls per tape)
and costs far less than compilation; it runs on every ``python -m
repro.statics verify`` and its facts are recorded in the benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TapeAnalysis", "analyze_tape", "LOG_TINY"]

#: ``log`` of the smallest positive *normal* float64 — positive values whose
#: static log lower bound falls below this may underflow to ``0.0`` in a
#: linear-domain pass.
LOG_TINY = float(np.log(np.finfo(np.float64).tiny))

#: Slack for the normalization proof: a weighted sum whose float weights sum
#: to 1.0 can accumulate a few ULPs above 1 across a deep reduction.
NORMALIZATION_TOLERANCE = 1e-6


@dataclass(frozen=True)
class TapeAnalysis:
    """Facts the abstract interpreter established about one tape.

    All bounds are sound over-approximations: every concrete evidence batch
    stays inside them, but not every point inside them is reachable.
    """

    #: Linear-domain interval of the root value.
    root_lower: float
    root_upper: float
    #: ``log(root_upper)`` — an upper bound on every log-domain output.
    root_log_upper: float
    #: The tape is proved normalized: log-domain output ``<= 0`` always.
    proves_log_nonpositive: bool
    #: The root can be exactly zero (log-domain ``-inf`` is reachable).
    zero_possible: bool
    #: Lower bound on ``log(v)`` over strictly positive root values ``v``
    #: (``+inf`` when the root can never be positive).
    min_positive_log: float
    #: ``min_positive_log < LOG_TINY``: a linear-domain pass may underflow a
    #: non-zero probability to 0.0 (use the log domain for this tape).
    underflow_risk: bool
    #: A linear intermediate can overflow to ``inf`` (makes log-domain
    #: ``NaN`` via ``inf - inf`` conceivable); never true for normalized
    #: tapes.
    overflow_possible: bool
    #: Depth of the deepest dependency chain (ASAP level of the last kernel).
    depth: int


def analyze_tape(tape, tolerance: float = NORMALIZATION_TOLERANCE) -> TapeAnalysis:
    """Abstractly interpret ``tape`` and return the established facts.

    Assumes the tape passed :func:`~repro.statics.verifier.verify_tape`
    (in particular: non-negative finite input parameters, def-before-use).
    """
    n_slots = tape.n_slots
    n_inputs = tape.n_inputs
    lo = np.zeros(n_slots, dtype=np.float64)
    hi = np.zeros(n_slots, dtype=np.float64)
    # Lower bound on log(v) for strictly positive v; +inf = never positive.
    log_min_pos = np.zeros(n_slots, dtype=np.float64)
    can_zero = np.zeros(n_slots, dtype=bool)

    for spec in tape.inputs:
        if spec.kind == "indicator":
            lo[spec.index] = 0.0
            hi[spec.index] = 1.0
            log_min_pos[spec.index] = 0.0  # the only positive value is 1
            can_zero[spec.index] = True  # an indicator miss
        else:
            prob = float(spec.prob)
            lo[spec.index] = prob
            hi[spec.index] = prob
            if prob > 0.0:
                log_min_pos[spec.index] = np.log(prob)
                can_zero[spec.index] = False
            else:
                log_min_pos[spec.index] = np.inf
                can_zero[spec.index] = True

    with np.errstate(invalid="ignore", over="ignore"):
        for kernel in tape.kernels:
            dest = slice(kernel.dest_start, kernel.dest_stop)
            a0, a1 = kernel.arg0, kernel.arg1
            if kernel.is_add:
                lo[dest] = lo[a0] + lo[a1]
                hi[dest] = hi[a0] + hi[a1]
                # A positive sum has at least one positive operand, and a sum
                # of non-negatives is >= each of them.
                log_min_pos[dest] = np.minimum(log_min_pos[a0], log_min_pos[a1])
                can_zero[dest] = can_zero[a0] & can_zero[a1]
            else:
                lo[dest] = lo[a0] * lo[a1]
                hi[dest] = hi[a0] * hi[a1]
                # A positive product has both factors positive.
                log_min_pos[dest] = log_min_pos[a0] + log_min_pos[a1]
                can_zero[dest] = can_zero[a0] | can_zero[a1]

    root = tape.root_slot
    root_upper = float(hi[root])
    with np.errstate(divide="ignore"):
        root_log_upper = float(np.log(root_upper)) if root_upper >= 0 else np.nan
    min_positive_log = float(log_min_pos[root])
    op_hi = hi[n_inputs:] if n_slots > n_inputs else hi
    return TapeAnalysis(
        root_lower=float(lo[root]),
        root_upper=root_upper,
        root_log_upper=root_log_upper,
        proves_log_nonpositive=bool(np.isfinite(root_upper) and root_upper <= 1.0 + tolerance),
        zero_possible=bool(can_zero[root]),
        min_positive_log=min_positive_log,
        underflow_risk=bool(min_positive_log < LOG_TINY),
        overflow_possible=bool(not np.all(np.isfinite(op_hi))),
        depth=tape.kernels[-1].level if tape.kernels else 0,
    )
