"""Static verification layer: prove IR properties without executing.

Three passes over the compile-then-execute pipeline's artifacts, none of
which runs a single tape kernel on data:

* :mod:`repro.statics.verifier` — a dataflow verifier for
  :class:`~repro.spn.compiled.CompiledTape` and
  :class:`~repro.spn.memplan.MemoryPlan`: topological order,
  def-before-use, independently re-derived liveness vs the allocator's
  intervals, slot interference, root reachability, dead-kernel detection
  and broadcast-constant legality.  Wired as a gate into artifact loading,
  registry publication and ``ExecutionOptions(check=True)``.
* :mod:`repro.statics.absint` — abstract interpretation over interval and
  sign domains: proves log-domain outputs ``<= 0`` for normalized tapes,
  tracks ``-inf`` reachability, and flags linear-domain underflow risk on
  deep product chains at compile time.
* :mod:`repro.statics.lint` — AST lint for the repository's own
  concurrency and API discipline (lock-guarded writes, blocking calls
  under locks, bare ``except``, unseeded randomness in hot paths).

``python -m repro.statics verify|lint`` exposes all three;
:mod:`repro.statics.mutate` holds the seeded corruption corpus that keeps
the verifier honest (100% detection, zero false positives).
"""

from .absint import LOG_TINY, TapeAnalysis, analyze_tape
from .lint import HOT_PATH_PACKAGES, LintFinding, lint_file, lint_paths, lint_source
from .mutate import MUTATORS, mutate, mutation_names
from .verifier import (
    PlanFacts,
    TapeFacts,
    VerificationError,
    verify_compiled,
    verify_memory_plan,
    verify_tape,
)

__all__ = [
    "LOG_TINY",
    "TapeAnalysis",
    "analyze_tape",
    "HOT_PATH_PACKAGES",
    "LintFinding",
    "lint_file",
    "lint_paths",
    "lint_source",
    "MUTATORS",
    "mutate",
    "mutation_names",
    "PlanFacts",
    "TapeFacts",
    "VerificationError",
    "verify_compiled",
    "verify_memory_plan",
    "verify_tape",
]
