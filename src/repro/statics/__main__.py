"""Command-line front end for the static verification layer.

``python -m repro.statics verify`` statically verifies compiled tapes and
memory plans — by default every suite profile (tape + fused and unfused
plans) plus the abstract-interpretation facts; ``--artifact`` verifies a
saved AOT artifact instead.  ``python -m repro.statics lint [PATHS...]``
runs the project lint (default: the installed ``repro`` package source).
Both exit nonzero on any failure/finding, which is how CI consumes them.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .absint import analyze_tape
from .lint import lint_paths
from .verifier import VerificationError, verify_compiled


def _verify_one(label: str, tape, plans) -> bool:
    """Verify one tape against each plan; print a one-line verdict."""
    started = time.perf_counter()
    try:
        tape_facts, _ = verify_compiled(tape, None)  # legacy-mode contract
        for plan in plans:
            verify_compiled(tape, plan)
    except VerificationError as exc:
        print(f"FAIL {label}: {exc}")
        return False
    analysis = analyze_tape(tape)
    elapsed = (time.perf_counter() - started) * 1e3
    facts = (
        f"kernels={tape_facts.n_kernels} slots={tape.n_slots} "
        f"plans={len(plans)} proves_log<=0={analysis.proves_log_nonpositive} "
        f"underflow_risk={analysis.underflow_risk}"
    )
    print(f"ok   {label}: {facts} ({elapsed:.0f} ms)")
    return True


def _cmd_verify(args: argparse.Namespace) -> int:
    failures = 0
    if args.artifact:
        from ..lifecycle.artifact import load_artifact

        for path in args.artifact:
            try:
                artifact = load_artifact(path)
            except Exception as exc:  # noqa: BLE001 — report any load failure
                print(f"FAIL {path}: {type(exc).__name__}: {exc}")
                failures += 1
                continue
            label = f"{artifact.name}@{artifact.version} ({path})"
            if not _verify_one(label, artifact.tape, [artifact.plan]):
                failures += 1
    else:
        from ..suite.registry import benchmark_names, benchmark_tape

        for name in benchmark_names():
            tape = benchmark_tape(name)
            plans = [tape.memory_plan(fuse=True), tape.memory_plan(fuse=False)]
            if not _verify_one(name, tape, plans):
                failures += 1
    if failures:
        print(f"{failures} verification failure(s)")
        return 1
    print("all tapes statically verified")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} lint finding(s)")
        return 1
    print("lint clean")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description="Static verification: tape/plan dataflow verifier, "
        "abstract interpretation, and the project concurrency/API lint.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser(
        "verify", help="statically verify suite tapes (or saved artifacts)"
    )
    verify.add_argument(
        "--artifact",
        action="append",
        default=[],
        metavar="PATH",
        help="verify a saved AOT artifact instead of the suite profiles "
        "(repeatable)",
    )
    verify.set_defaults(func=_cmd_verify)

    lint = sub.add_parser("lint", help="run the project lint over source paths")
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
