"""Seeded IR mutation corpus: the static verifier's adversarial test set.

Each mutator takes an authentic ``(tape, plan)`` pair, deep-copies it via
the artifact payload round-trip (never ``deepcopy`` — :class:`MemoryPlan`
holds ``threading.local`` scratch), applies one *semantically corrupting*
edit that every structural loader would still accept, and returns the
corrupted pair.  The contract — enforced by ``tests/test_statics.py`` and
measured in ``benchmarks/test_bench_statics.py`` — is that
:func:`repro.statics.verifier.verify_compiled` raises
:class:`~repro.statics.verifier.VerificationError` on **every** mutator's
output for every suite profile (100% detection), while the unmutated pairs
verify clean (zero false positives).

Mutators return ``None`` when structurally inapplicable to a given tape
(e.g. no broadcast column to perturb); the nine suite profiles admit all
of them.  Each mutation is guaranteed-detectable by construction — e.g.
operand redirection targets lanes whose expected value is an *operation*
slot, which the verifier's canonicalization maps to a unique id, so no
duplicate-valued input slot can mask the edit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..spn.compiled import CompiledTape, tape_from_payload, tape_to_payload
from ..spn.linearize import OP_MUL
from ..spn.memplan import MemoryPlan, plan_from_payload, plan_to_payload

__all__ = ["MUTATORS", "mutate", "mutation_names"]

MutationResult = Optional[Tuple[CompiledTape, MemoryPlan]]
Mutator = Callable[[CompiledTape, MemoryPlan, np.random.Generator], MutationResult]


def _copy_pair(tape: CompiledTape, plan: MemoryPlan) -> Tuple[CompiledTape, MemoryPlan]:
    """Independent copies via the artifact payload round-trip.

    The round-trip is the only sanctioned deep copy: both IR classes hold
    non-copyable runtime state (plan scratch ``threading.local``, the
    tape's plan cache lock), and payloads are bit-exact by design.
    """
    return (
        tape_from_payload(tape_to_payload(tape)),
        plan_from_payload(plan_to_payload(plan)),
    )


def _rebuild(tape: CompiledTape, **fields) -> CompiledTape:
    """A fresh tape with some declarative fields replaced.

    Construction bypasses ``tape_from_payload`` validation deliberately:
    mutators must produce IR that *format* checks accept but the static
    verifier rejects.
    """
    with np.errstate(invalid="ignore"):  # mutants may hold negative probs
        return CompiledTape(
            inputs=fields.get("inputs", tape.inputs),
            kernels=fields.get("kernels", tape.kernels),
            root_slot=fields.get("root_slot", tape.root_slot),
            slot_map=tape.slot_map,
        )


# --------------------------------------------------------------------------- #
# Tape mutators
# --------------------------------------------------------------------------- #
def tape_forward_operand(tape, plan, rng) -> MutationResult:
    """A lane reads its own destination: def-before-use violation."""
    tape, plan = _copy_pair(tape, plan)
    if not tape.kernels:
        return None
    kernel = tape.kernels[int(rng.integers(len(tape.kernels)))]
    lane = int(rng.integers(kernel.width))
    kernel.arg0[lane] = kernel.dest_start + lane
    return tape, plan


def tape_level_corrupt(tape, plan, rng) -> MutationResult:
    """One kernel claims a level inconsistent with its operands' depths."""
    tape, plan = _copy_pair(tape, plan)
    if not tape.kernels:
        return None
    index = int(rng.integers(len(tape.kernels)))
    kernels = list(tape.kernels)
    kernels[index] = replace(kernels[index], level=kernels[index].level + 1)
    return _rebuild(tape, kernels=kernels), plan


def tape_dead_kernel(tape, plan, rng) -> MutationResult:
    """An injected kernel whose output nothing reads and is not the root."""
    tape, plan = _copy_pair(tape, plan)
    if not tape.kernels:
        return None
    n_slots = tape.n_slots
    last = tape.kernels[-1]
    dead = type(last)(
        level=last.level + 1,
        op=OP_MUL,
        dest_start=n_slots,
        dest_stop=n_slots + 1,
        arg0=np.array([tape.root_slot], dtype=np.intp),
        arg1=np.array([tape.root_slot], dtype=np.intp),
    )
    return _rebuild(tape, kernels=list(tape.kernels) + [dead]), plan


def tape_negative_weight(tape, plan, rng) -> MutationResult:
    """A constant input slot with a negative probability."""
    tape, plan = _copy_pair(tape, plan)
    consts = [s for s in tape.inputs if s.kind != "indicator"]
    if not consts:
        return None
    victim = consts[int(rng.integers(len(consts)))]
    inputs = [
        replace(s, prob=-0.5) if s.index == victim.index else s for s in tape.inputs
    ]
    return _rebuild(tape, inputs=inputs), plan


def tape_root_redirect(tape, plan, rng) -> MutationResult:
    """Root moved onto an input slot: every kernel becomes dead code."""
    tape, plan = _copy_pair(tape, plan)
    if not tape.kernels or tape.n_inputs == 0:
        return None
    return _rebuild(tape, root_slot=int(rng.integers(tape.n_inputs))), plan


# --------------------------------------------------------------------------- #
# Plan mutators
# --------------------------------------------------------------------------- #
def _replan(plan: MemoryPlan, **fields) -> MemoryPlan:
    """A freshly constructed plan with some fields replaced.

    Every plan mutator hands its result through here — even after an
    in-place array edit — because a plan must leave a mutator *as a loader
    would build it*: ``MemoryPlan.__post_init__`` re-derives the
    concatenated kernel metadata the verifier's fast path reads, and an
    edit without reconstruction would leave that metadata describing the
    unmutated plan.
    """
    return replace(plan, **fields)


def plan_swap_kernels(tape, plan, rng) -> MutationResult:
    """Two dependent adjacent kernels reordered (topological violation)."""
    tape, plan = _copy_pair(tape, plan)
    for i in range(len(plan.kernels) - 1):
        first, second = plan.kernels[i], plan.kernels[i + 1]
        written = set(range(first.dest_start, first.dest_stop))
        reads = set()
        if first.encode is not None:
            written.update(first.encode.ind_rows.tolist())
            written.update(first.encode.const_rows.tolist())
        if second.const_arg0 is None:
            reads.update(second.arg0.tolist())
        if second.const_arg1 is None:
            reads.update(second.arg1.tolist())
        if written & reads:
            kernels = list(plan.kernels)
            kernels[i], kernels[i + 1] = kernels[i + 1], kernels[i]
            return tape, _replan(plan, kernels=kernels)
    return None


def plan_dest_shift(tape, plan, rng) -> MutationResult:
    """A kernel's destination interval spliced onto aliasing rows.

    The shifted interval overwrites rows other live values occupy while
    the value's readers still gather the original rows — the
    slot-interference shape a fragmented or miscompiled allocator produces.
    """
    tape, plan = _copy_pair(tape, plan)
    candidates = [
        i
        for i, k in enumerate(plan.kernels)
        if k.dest_stop + 1 <= plan.n_physical or k.dest_start >= 1
    ]
    if not candidates:
        return None
    index = candidates[int(rng.integers(len(candidates)))]
    kernel = plan.kernels[index]
    delta = 1 if kernel.dest_stop + 1 <= plan.n_physical else -1
    kernels = list(plan.kernels)
    kernels[index] = replace(
        kernel,
        dest_start=kernel.dest_start + delta,
        dest_stop=kernel.dest_stop + delta,
    )
    return tape, _replan(plan, kernels=kernels)


def plan_shrink_max_live(tape, plan, rng) -> MutationResult:
    """The recorded liveness peak understated by one."""
    tape, plan = _copy_pair(tape, plan)
    if plan.max_live <= 1:
        return None
    return tape, _replan(plan, max_live=plan.max_live - 1)


def plan_drop_kernel(tape, plan, rng) -> MutationResult:
    """One planned kernel deleted: its tape operations go uncovered."""
    tape, plan = _copy_pair(tape, plan)
    if len(plan.kernels) <= 1:
        return None
    kernels = list(plan.kernels)
    del kernels[int(rng.integers(len(kernels)))]
    return tape, _replan(plan, kernels=kernels)


def plan_operand_redirect(tape, plan, rng) -> MutationResult:
    """One operand row redirected to a neighboring physical row.

    Targets a lane whose expected operand is an *operation* slot, which
    canonicalizes to a unique id — a duplicate-valued input row can never
    mask the redirect, so detection is guaranteed, not probabilistic.
    """
    tape, plan = _copy_pair(tape, plan)
    if plan.n_physical < 2:
        return None
    n_inputs = tape.n_inputs
    slot_owner = {}
    for index, kernel in enumerate(plan.kernels):
        for offset, slot in enumerate(kernel.source_slots.tolist()):
            slot_owner[slot] = (index, offset)
    choices = []
    for tk in tape.kernels:
        for lane in range(tk.width):
            if int(tk.arg0[lane]) >= n_inputs and (tk.dest_start + lane) in slot_owner:
                index, offset = slot_owner[tk.dest_start + lane]
                if plan.kernels[index].const_arg0 is None:
                    choices.append((index, offset))
    if not choices:
        return None
    index, offset = choices[int(rng.integers(len(choices)))]
    kernel = plan.kernels[index]
    arg0 = kernel.arg0.copy()
    arg0[offset] = (int(arg0[offset]) + 1) % plan.n_physical
    # Clear the strided-slice view so the mutation reaches the symbolic
    # replay instead of tripping the trivial rows-vs-slice consistency rule.
    kernels = list(plan.kernels)
    kernels[index] = replace(kernel, arg0=arg0, arg0_slice=None)
    return tape, _replan(plan, kernels=kernels)


def plan_const_perturb(tape, plan, rng) -> MutationResult:
    """One broadcast-constant column entry altered (wrong weight served)."""
    tape, plan = _copy_pair(tape, plan)
    columns = [
        column
        for kernel in plan.kernels
        for column in (kernel.const_arg0, kernel.const_arg1)
        if column is not None and column.size
    ]
    if not columns:
        return None
    column = columns[int(rng.integers(len(columns)))]
    lane = int(rng.integers(column.shape[0]))
    column[lane, 0] = column[lane, 0] * 1.5 if column[lane, 0] != 0.0 else 0.25
    return tape, _replan(plan)


def plan_encode_corrupt(tape, plan, rng) -> MutationResult:
    """An encoded indicator's matching value altered (wrong evidence test)."""
    tape, plan = _copy_pair(tape, plan)
    encodes = [
        k.encode for k in plan.kernels if k.encode is not None and k.encode.ind_rows.size
    ]
    if not encodes:
        return None
    encode = encodes[int(rng.integers(len(encodes)))]
    lane = int(rng.integers(encode.ind_values.size))
    encode.ind_values[lane] += 1
    return tape, _replan(plan)


def plan_root_redirect(tape, plan, rng) -> MutationResult:
    """The recorded root row points at a neighboring physical row."""
    tape, plan = _copy_pair(tape, plan)
    if plan.n_physical < 2:
        return None
    return tape, _replan(plan, root_phys=(plan.root_phys + 1) % plan.n_physical)


def plan_scalar_slots(tape, plan, rng) -> MutationResult:
    """The recorded logical slot count disagrees with the tape."""
    tape, plan = _copy_pair(tape, plan)
    return tape, _replan(plan, n_slots=plan.n_slots + 1)


def plan_swap_source_slots(tape, plan, rng) -> MutationResult:
    """Two source-slot entries transposed inside one planned kernel."""
    tape, plan = _copy_pair(tape, plan)
    wide = [k for k in plan.kernels if k.width >= 2]
    if not wide:
        return None
    kernel = wide[int(rng.integers(len(wide)))]
    slots = kernel.source_slots
    slots[0], slots[1] = int(slots[1]), int(slots[0])
    return tape, _replan(plan)


#: The seeded corpus: name -> mutator.  ``verify_compiled`` must reject
#: every applicable mutation of every suite profile.
MUTATORS: Dict[str, Mutator] = {
    "tape_forward_operand": tape_forward_operand,
    "tape_level_corrupt": tape_level_corrupt,
    "tape_dead_kernel": tape_dead_kernel,
    "tape_negative_weight": tape_negative_weight,
    "tape_root_redirect": tape_root_redirect,
    "plan_swap_kernels": plan_swap_kernels,
    "plan_dest_shift": plan_dest_shift,
    "plan_shrink_max_live": plan_shrink_max_live,
    "plan_drop_kernel": plan_drop_kernel,
    "plan_operand_redirect": plan_operand_redirect,
    "plan_const_perturb": plan_const_perturb,
    "plan_encode_corrupt": plan_encode_corrupt,
    "plan_root_redirect": plan_root_redirect,
    "plan_scalar_slots": plan_scalar_slots,
    "plan_swap_source_slots": plan_swap_source_slots,
}


def mutation_names() -> Tuple[str, ...]:
    """The corpus mutator names, in registry order."""
    return tuple(MUTATORS)


def mutate(
    name: str,
    tape: CompiledTape,
    plan: MemoryPlan,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> MutationResult:
    """Apply one named mutator; ``None`` when inapplicable to this pair."""
    if name not in MUTATORS:
        known = ", ".join(sorted(MUTATORS))
        raise KeyError(f"unknown mutator {name!r}; expected one of {known}")
    if rng is None:
        rng = np.random.default_rng(seed)
    return MUTATORS[name](tape, plan, rng)
