"""The fault-plane switchboard: one global read when chaos is off.

Instrumented sites follow the same zero-overhead-when-off discipline as
the per-kernel profiler (:mod:`repro.observability.profile`): they resolve
:func:`active_plan` **once per batch/call** — a single module-attribute
read — and take the original, uninstrumented code path when it returns
``None``.  Fault checks, visit counting and seeded draws happen only while
a plan is installed; ``benchmarks/test_bench_resilience.py`` gates the
hooks-disabled serving overhead at <= 1.02.

Installation is process-wide and deliberately *not* per-thread (a
contextvar would not reach serving worker threads, which are spawned
before any test installs a plan): the chaos soak and the fault tests own
the process while they run, and :func:`fault_scope` guarantees the plan is
uninstalled on exit even when the driven workload raises.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .plan import FaultPlan

__all__ = ["active_plan", "install", "uninstall", "fault_scope"]

#: The installed plan (module global: the off-path cost is one attribute
#: read; flipped only through :func:`install` / :func:`uninstall`).
_PLAN: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The installed :class:`FaultPlan`, or ``None`` (the fast path)."""
    return _PLAN


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` disables injection)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    """Remove any installed plan (idempotent)."""
    install(None)


@contextmanager
def fault_scope(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block, then uninstall.

    Not reentrant: nesting scopes would let an inner plan silently shadow
    an outer one mid-soak, so a second installation raises.
    """
    if _PLAN is not None:
        raise RuntimeError("a fault plan is already installed")
    install(plan)
    try:
        yield plan
    finally:
        uninstall()
