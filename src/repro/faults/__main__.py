"""Command-line entry point: ``python -m repro.faults soak``.

Runs the seeded chaos soak (:mod:`repro.faults.soak`) against an
in-process serving stack, prints the JSON report, and exits non-zero when
any serving invariant is violated — suitable as a CI gate (the
``chaos-soak`` job runs a short fixed-seed soak on every push).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .soak import run_soak


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic fault-injection harnesses.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    soak = sub.add_parser(
        "soak",
        help="run the seeded chaos soak against a live serving stack",
        description=(
            "Drive an InferenceServer with concurrent requests under a "
            "seeded FaultPlan and assert the serving invariants: no lost "
            "requests, bit-identical successes, incumbent intact after a "
            "crashed publish."
        ),
    )
    soak.add_argument(
        "--requests", type=int, default=10_000, help="requests to submit"
    )
    soak.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    soak.add_argument(
        "--model", default="Banknote", help="suite benchmark to serve"
    )
    soak.add_argument(
        "--submitters", type=int, default=4, help="concurrent client threads"
    )
    soak.add_argument(
        "--workers", type=int, default=2, help="server worker threads"
    )
    soak.add_argument(
        "--no-publish-crash",
        action="store_true",
        help="skip the crash-mid-publish scenario",
    )
    soak.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait for all submitters before declaring them stuck",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "soak":
        report = run_soak(
            n_requests=args.requests,
            seed=args.seed,
            model=args.model,
            n_submitters=args.submitters,
            n_workers=args.workers,
            publish_crash=not args.no_publish_crash,
            timeout_s=args.timeout,
        )
        json.dump(report, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
        return 0 if report["invariants"]["clean"] else 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
