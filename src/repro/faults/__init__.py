"""Deterministic fault injection (the chaos-engineering plane).

The package has three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`: a
  seeded, replayable schedule of named faults over the instrumented
  sites (:data:`FAULT_SITES`);
* :mod:`repro.faults.hooks` — the process-wide switchboard the sites
  consult (one module-attribute read when chaos is off, same
  zero-overhead-when-off discipline as the per-kernel profiler);
* :mod:`repro.faults.soak` — the chaos soak harness
  (``python -m repro.faults soak``) asserting the serving tier's three
  invariants under injected chaos: every submitted request resolves, every
  successful response is bit-identical to offline execution, and a crashed
  publish never corrupts the registry incumbent.

This module deliberately re-exports only the plan/hook layer: importing
``repro.faults`` from the serving code must not drag the soak harness
(and with it the serving stack) back in.
"""

from .hooks import active_plan, fault_scope, install, uninstall
from .plan import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedExecutorFault,
    InjectedFault,
    UnknownFaultSiteError,
)

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedExecutorFault",
    "InjectedFault",
    "UnknownFaultSiteError",
    "active_plan",
    "fault_scope",
    "install",
    "uninstall",
]
