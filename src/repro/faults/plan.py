"""Deterministic fault plans: *which* fault fires *where*, seeded.

A :class:`FaultPlan` is the unit of chaos engineering in this repository:
a seeded schedule of named faults over the instrumented **fault sites**
(:data:`FAULT_SITES`).  Each site decision is a pure function of
``(plan seed, site name, per-site visit index)`` — two runs that visit a
site the same number of times make identical fire/skip decisions, so a
chaos soak can be replayed from its seed and a flaky failure narrowed to
one schedule.  Visit indices are claimed under a per-plan lock, so
concurrent worker threads never double-draw an index (the *assignment* of
a firing to a thread still depends on scheduling; the *number and order*
of firings per site does not).

A :class:`FaultSpec` describes one site's behaviour: the firing ``rate``
per visit, an ``after`` warm-up (the first ``after`` visits never fire),
an optional ``times`` cap on total firings, and the action parameters —
``delay_s`` for latency faults, ``skew_s`` for clock skew, ``message``
for injected exceptions.  The site code interprets the spec through the
plan's action helpers:

* :meth:`FaultPlan.should_fire` — the bare seeded decision;
* :meth:`FaultPlan.maybe_raise` — raise an :class:`InjectedFault`
  subclass when the site fires;
* :meth:`FaultPlan.maybe_delay` — sleep ``delay_s`` when the site fires
  (slow kernels, queue stalls);
* :meth:`FaultPlan.corrupt_text` — flip one seeded character when the
  site fires (artifact corruption on load);
* :meth:`FaultPlan.clock_skew` — the additive clock offset the serving
  deadline clock applies while the plan carries a ``clock.skew`` spec.

Everything an injected fault raises derives from :class:`InjectedFault`,
so tests and the soak harness can always tell injected chaos from a real
bug.  See ``docs/robustness.md`` for the site catalog and the failure
mode each site exercises.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedCrash",
    "InjectedExecutorFault",
    "UnknownFaultSiteError",
]

#: The instrumented fault sites, with the failure each one exercises.
#: Site code resolves the active plan once per batch/call and consults it
#: only when one is installed (:mod:`repro.faults.hooks`), so a site costs
#: one module-attribute read when chaos is off.
FAULT_SITES: Dict[str, str] = {
    "serving.worker_crash": (
        "a worker thread dies mid-batch (before executing); the batch is "
        "rescued back onto the queue and the supervisor restarts the worker"
    ),
    "serving.slow_kernel": (
        "one (model, kind) group's engine call is delayed by delay_s — the "
        "latency fault behind deadline and slow-query handling"
    ),
    "serving.executor_fault": (
        "one engine call raises InjectedExecutorFault; every row of the "
        "group fails with it (a retryable error for the clients)"
    ),
    "queue.stall": (
        "a consumer stalls delay_s before collecting its batch — queue "
        "depth grows and admission backpressure trips"
    ),
    "clock.skew": (
        "the serving deadline clock runs skew_s ahead of the real "
        "monotonic clock while the plan is installed"
    ),
    "artifact.load_corruption": (
        "the artifact text read by load_artifact has one seeded character "
        "flipped — the content hash must catch it"
    ),
    "artifact.save_crash": (
        "save_artifact crashes after writing the tmp file but before the "
        "atomic replace — the tmp file must not survive"
    ),
    "lifecycle.publish_crash": (
        "ModelRegistry.publish crashes after validation but before the "
        "live-pointer flip — the incumbent must keep serving"
    ),
}


class UnknownFaultSiteError(ValueError):
    """A spec (or query) names a site that is not instrumented."""


class InjectedFault(RuntimeError):
    """Base of every exception raised by fault injection (never by real code)."""

    def __init__(self, site: str, index: int, message: str = "") -> None:
        detail = f" ({message})" if message else ""
        super().__init__(f"injected fault at {site!r} (firing #{index}){detail}")
        self.site = site
        self.index = index


class InjectedCrash(InjectedFault):
    """An injected crash: the surrounding thread/operation dies here."""


class InjectedExecutorFault(InjectedFault):
    """An injected engine-call failure (forwarded to the group's futures)."""


@dataclass(frozen=True)
class FaultSpec:
    """One site's seeded failure behaviour within a plan."""

    site: str
    #: Firing probability per visit (1.0 = every eligible visit).
    rate: float = 1.0
    #: Visits before the site becomes eligible (warm-up).
    after: int = 0
    #: Cap on total firings (``None`` = unbounded).
    times: Optional[int] = None
    #: Sleep for the latency sites (``serving.slow_kernel``, ``queue.stall``).
    delay_s: float = 0.0
    #: Clock offset for ``clock.skew`` (applied while the plan is installed).
    skew_s: float = 0.0
    #: Message carried by injected exceptions.
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            known = ", ".join(sorted(FAULT_SITES))
            raise UnknownFaultSiteError(
                f"unknown fault site {self.site!r}; instrumented sites: {known}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


@dataclass
class _SiteState:
    """Per-site visit/fire accounting (guarded by the plan lock)."""

    spec: FaultSpec
    visits: int = 0
    fired: int = 0


class FaultPlan:
    """A seeded, thread-safe schedule of faults over the instrumented sites.

    ``specs`` lists the sites this plan injects at; sites without a spec
    never fire.  The plan is installed process-wide with
    :func:`repro.faults.hooks.install` (or the :func:`~repro.faults.hooks.
    fault_scope` context manager); site code reaches it through
    :func:`repro.faults.hooks.active_plan`.
    """

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._sites: Dict[str, _SiteState] = {}
        for spec in specs:
            if spec.site in self._sites:
                raise ValueError(f"duplicate spec for fault site {spec.site!r}")
            self._sites[spec.site] = _SiteState(spec=spec)
        skew = self._sites.get("clock.skew")
        #: Fixed additive clock offset (read lock-free on the deadline path).
        self.skew_s: float = skew.spec.skew_s if skew is not None else 0.0

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def should_fire(self, site: str) -> Tuple[bool, int]:
        """Claim the next visit of ``site``; return ``(fires, firing index)``.

        The decision for visit *i* is ``random.Random(f"{seed}:{site}:{i}")``
        — a pure function of the plan seed, the site name and the visit
        index, independent of thread interleaving and of every other
        site's traffic.
        """
        if site not in FAULT_SITES:
            raise UnknownFaultSiteError(f"unknown fault site {site!r}")
        with self._lock:
            state = self._sites.get(site)
            if state is None:
                return False, -1
            index = state.visits
            state.visits += 1
            spec = state.spec
            if index < spec.after:
                return False, -1
            if spec.times is not None and state.fired >= spec.times:
                return False, -1
            if spec.rate >= 1.0:
                fires = True
            elif spec.rate <= 0.0:
                fires = False
            else:
                # String seeds hash via sha512 inside ``random.seed`` —
                # deterministic across processes (unlike ``hash``).
                draw = random.Random(f"{self.seed}:{site}:{index}").random()
                fires = draw < spec.rate
            if fires:
                state.fired += 1
                return True, state.fired - 1
            return False, -1

    # ------------------------------------------------------------------ #
    # Actions (what the site does when the decision fires)
    # ------------------------------------------------------------------ #
    def maybe_raise(self, site: str, exc_type: type = InjectedFault) -> None:
        """Raise ``exc_type(site, index)`` when ``site`` fires this visit."""
        fires, index = self.should_fire(site)
        if fires:
            raise exc_type(site, index, self._sites[site].spec.message)

    def maybe_delay(self, site: str) -> float:
        """Sleep the site's ``delay_s`` when it fires; returns the delay."""
        fires, _ = self.should_fire(site)
        if not fires:
            return 0.0
        delay = self._sites[site].spec.delay_s
        if delay > 0.0:
            # The plan lock was released by should_fire: the sleep never
            # serializes other sites' decisions.
            time.sleep(delay)
        return delay

    def corrupt_text(self, site: str, text: str) -> str:
        """Flip one seeded character of ``text`` when ``site`` fires."""
        fires, index = self.should_fire(site)
        if not fires or not text:
            return text
        rng = random.Random(f"{self.seed}:{site}:corrupt:{index}")
        pos = rng.randrange(len(text))
        old = text[pos]
        # Flip within the printable ASCII band so the result stays text
        # (the integrity hash, not the JSON parser, should catch it —
        # although either detection keeps the invariant).
        new = chr(33 + (ord(old) - 33 + 1 + rng.randrange(93)) % 94)
        return text[:pos] + new + text[pos + 1 :]

    def clock_skew(self) -> float:
        """The additive offset the serving deadline clock applies."""
        return self.skew_s

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def sites(self) -> List[str]:
        """Sites this plan has specs for, sorted."""
        with self._lock:
            return sorted(self._sites)

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{visits, fired}`` accounting (one consistent read)."""
        with self._lock:
            return {
                site: {"visits": state.visits, "fired": state.fired}
                for site, state in sorted(self._sites.items())
            }
