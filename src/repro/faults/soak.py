"""The chaos soak: seeded fault injection against a live serving stack.

:func:`run_soak` drives an :class:`~repro.serving.InferenceServer` with
``n_requests`` concurrent client requests while a seeded
:class:`~repro.faults.FaultPlan` fires worker crashes, slow kernels, queue
stalls, executor faults and (optionally) a crash mid-``publish`` — and
asserts the three serving invariants the rest of the repository's
correctness story rests on:

1. **No lost requests** — every submitted request resolves: a value or a
   typed error, never a future that hangs forever.
2. **Bit-identical successes** — every *successful* response equals
   (``np.array_equal``) the offline ``session.run`` answer for the same
   row.  Chaos may fail a request; it may never corrupt one.
3. **The incumbent survives a crashed publish** — a registry publish that
   dies after validation but before the pointer flip leaves the live
   version untouched and still serving correct values.

Determinism: per-site fault schedules are a pure function of the plan
seed (see :class:`~repro.faults.FaultPlan`), client backoff jitter is
seeded, and the workload rows are drawn from a seeded generator — so a
soak failure reproduces from its seed.  *Which* request meets which fault
still depends on thread scheduling; the invariants hold for every
interleaving, which is exactly what the soak checks.

Run it: ``python -m repro.faults soak --requests 10000 --seed 0``.  The
resilience benchmark (``benchmarks/test_bench_resilience.py``) runs the
same harness and records the outcome in the ``serving_resilience`` section
of ``BENCH_sweeps.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

from ..api.queries import LogLikelihood
from ..api.session import InferenceSession
from .hooks import fault_scope
from .plan import FaultPlan, FaultSpec, InjectedCrash, InjectedFault

__all__ = ["chaos_specs", "run_soak"]


def chaos_specs(
    crash_rate: float = 0.002,
    slow_rate: float = 0.01,
    executor_fault_rate: float = 0.005,
    stall_rate: float = 0.005,
    delay_s: float = 0.002,
    publish_crash: bool = True,
) -> List[FaultSpec]:
    """The default soak chaos profile (every serving-path site armed)."""
    specs = [
        FaultSpec("serving.worker_crash", rate=crash_rate),
        FaultSpec("serving.slow_kernel", rate=slow_rate, delay_s=delay_s),
        FaultSpec("serving.executor_fault", rate=executor_fault_rate),
        FaultSpec("queue.stall", rate=stall_rate, delay_s=delay_s),
    ]
    if publish_crash:
        specs.append(FaultSpec("lifecycle.publish_crash", rate=1.0, times=1))
    return specs


def _evidence_pool(n_rows: int, n_vars: int, seed: int) -> np.ndarray:
    """Seeded pool of evidence rows over {MARGINALIZED, 0, 1}."""
    rng = np.random.default_rng(seed)
    return rng.integers(-1, 2, size=(n_rows, n_vars)).astype(np.float64)


def run_soak(
    n_requests: int = 10_000,
    seed: int = 0,
    model: str = "Banknote",
    n_submitters: int = 4,
    n_workers: int = 2,
    max_in_flight: int = 256,
    deadline_fraction: float = 0.1,
    deadline_s: float = 0.05,
    publish_crash: bool = True,
    specs: Optional[List[FaultSpec]] = None,
    timeout_s: float = 300.0,
) -> Dict[str, object]:
    """Run one seeded chaos soak; return its report (see module docstring).

    The report's ``invariants`` entry carries the three booleans the soak
    exists to check (``no_lost_requests``, ``bit_identical_successes``,
    ``incumbent_intact``) plus ``clean`` (their conjunction and no
    unexpected errors); the rest is accounting — outcome counts by type,
    per-site fault firings, server resilience counters, throughput.
    """
    # Imported here: repro.serving imports repro.faults.hooks, so the
    # package-level faults module must not import serving back at load.
    from ..serving import (
        BatchingPolicy,
        BreakerPolicy,
        CircuitOpenError,
        DeadlineExceededError,
        ExecutorFaultError,
        InferenceClient,
        InferenceServer,
        QueueFullError,
        RetryBudget,
        RetryPolicy,
        SheddingError,
        WorkerCrashError,
    )

    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if not 0.0 <= deadline_fraction <= 1.0:
        raise ValueError(
            f"deadline_fraction must be in [0, 1], got {deadline_fraction}"
        )

    offline = InferenceSession(model, warm=True)
    pool = _evidence_pool(min(256, max(n_requests, 1)), offline.n_vars, seed)
    expected = np.asarray(offline.run(LogLikelihood(evidence=pool)))

    plan = FaultPlan(
        seed=seed,
        specs=specs if specs is not None else chaos_specs(publish_crash=publish_crash),
    )
    deadline_stride = (
        0 if deadline_fraction <= 0.0 else max(1, round(1.0 / deadline_fraction))
    )

    # Typed failures chaos may legitimately cause; anything else is a bug.
    expected_errors = (
        DeadlineExceededError,
        SheddingError,
        WorkerCrashError,
        CircuitOpenError,
        QueueFullError,
        ExecutorFaultError,
        InjectedFault,
    )

    outcomes_lock = threading.Lock()
    outcomes: Dict[str, int] = {"ok": 0, "mismatch": 0}
    unexpected: List[str] = []
    resolved = 0

    def record(key: str, detail: Optional[str] = None) -> None:
        nonlocal resolved
        with outcomes_lock:
            outcomes[key] = outcomes.get(key, 0) + 1
            resolved += 1
            if detail is not None and len(unexpected) < 10:
                unexpected.append(detail)

    server = InferenceServer(
        models=[model],
        policy=BatchingPolicy(max_batch_size=32, max_wait_s=0.001, max_queue_depth=256),
        n_workers=n_workers,
        max_in_flight=max_in_flight,
        max_rescues=3,
        heal_interval_s=0.01,
    )
    client = InferenceClient(
        server,
        model,
        retry=RetryPolicy(
            max_attempts=6, base_delay_s=0.001, max_delay_s=0.02, seed=seed
        ),
        retry_budget=RetryBudget(ratio=0.9, min_tokens=100.0, max_tokens=1000.0),
        breaker=BreakerPolicy(failure_threshold=16, reset_timeout_s=0.02),
    )

    def submitter(worker_id: int) -> None:
        for i in range(worker_id, n_requests, n_submitters):
            row = pool[i % len(pool)]
            bounded = deadline_stride > 0 and i % deadline_stride == 0
            try:
                value = client.query(
                    row,
                    kind="log_likelihood",
                    timeout=5.0,
                    deadline_s=deadline_s if bounded else None,
                )
            except expected_errors as exc:
                record(f"error:{type(exc).__name__}")
            except BaseException as exc:  # noqa: BLE001 - recorded as a soak failure
                record("unexpected", detail=f"{type(exc).__name__}: {exc}")
            else:
                if np.array_equal(np.asarray(value), expected[i % len(pool)]):
                    record("ok")
                else:
                    record("mismatch")

    started = time.perf_counter()
    publish_report: Dict[str, object] = {"attempted": False}
    with fault_scope(plan):
        server.start()
        threads = [
            threading.Thread(target=submitter, args=(tid,), daemon=True)
            for tid in range(n_submitters)
        ]
        for thread in threads:
            thread.start()

        if publish_crash:
            # Publish a candidate mid-soak; the armed lifecycle.publish_crash
            # site kills it after validation and the incumbent keeps serving.
            publish_report["attempted"] = True
            while True:
                with outcomes_lock:
                    done = resolved
                if done >= n_requests // 2 or done >= n_requests:
                    break
                time.sleep(0.01)
            before = server.live_version(model)
            candidate = InferenceSession(model, warm=True)
            try:
                server.publish(model, "v-chaos", candidate)
            except InjectedCrash as exc:
                publish_report["crashed"] = str(exc)
            else:
                publish_report["crashed"] = None  # site already spent its budget
            publish_report["live_before"] = before
            publish_report["live_after"] = server.live_version(model)

        deadline = time.monotonic() + timeout_s
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        stuck = sum(1 for thread in threads if thread.is_alive())
        if stuck == 0:
            server.stop()

    with outcomes_lock:
        counts = dict(sorted(outcomes.items()))
        resolved_total = resolved
    elapsed = time.perf_counter() - started

    # Post-chaos probe: the incumbent must still serve bit-identical values.
    incumbent_intact = True
    if publish_crash and stuck == 0:
        live = server.live_version(model)
        incumbent_intact = live == publish_report.get("live_before", live)
        probe_session = server.model(model).session
        probe = np.asarray(probe_session.run(LogLikelihood(evidence=pool[:8])))
        incumbent_intact = incumbent_intact and bool(
            np.array_equal(probe, expected[:8])
        )

    lost = n_requests - resolved_total
    registry = server.metrics.registry
    report: Dict[str, object] = {
        "n_requests": n_requests,
        "seed": seed,
        "model": model,
        "elapsed_s": elapsed,
        "throughput_rps": n_requests / elapsed if elapsed > 0 else 0.0,
        "outcomes": counts,
        "unexpected_errors": unexpected,
        "lost_requests": lost,
        "stuck_submitters": stuck,
        "faults": plan.report(),
        "publish": publish_report,
        "counters": {
            "worker_restarts": registry.counter(
                "serving_worker_restarts_total"
            ).value,
            "shed": registry.counter("serving_shed_total").value,
            "deadline_exceeded": registry.counter(
                "serving_deadline_exceeded_total"
            ).value,
            "retries": registry.counter("serving_retries_total").value,
        },
        "invariants": {
            "no_lost_requests": lost == 0 and stuck == 0,
            "bit_identical_successes": counts.get("mismatch", 0) == 0,
            "incumbent_intact": incumbent_intact,
        },
    }
    report["invariants"]["clean"] = bool(
        all(report["invariants"].values()) and counts.get("unexpected", 0) == 0
    )
    return report
