"""Table I: compute and memory resources of the four platforms.

The table is static — it documents the resources each platform brings to the
comparison — and is generated from the same configuration objects the models
and the compiler use, so it cannot drift from the implementation.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analysis.report import format_table
from ..baselines.cpu import CpuConfig
from ..baselines.gpu import GpuConfig
from ..processor.config import ProcessorConfig, ptree_config, pvect_config

__all__ = ["rows", "main"]


def rows(
    cpu: CpuConfig | None = None,
    gpu: GpuConfig | None = None,
    pvect: ProcessorConfig | None = None,
    ptree: ProcessorConfig | None = None,
) -> List[Tuple[str, str, str, str]]:
    """Return the rows of Table I: platform, compute units, immediate memory, banks."""
    cpu = cpu or CpuConfig()
    gpu = gpu or GpuConfig()
    pvect = pvect or pvect_config()
    ptree = ptree or ptree_config()
    # The CPU register/cache description follows Table I of the paper; the
    # modelled core exposes the same resources through CpuConfig.
    cpu_row = (
        "CPU",
        f"{cpu.fp_ports} arith. units in a superscalar core",
        "168 80b registers + 32 KB L1 cache",
        "16",
    )
    gpu_row = (
        "GPU",
        "128 CUDA cores",
        "64K 32b registers + 64 KB shared mem.",
        str(gpu.n_banks),
    )

    def processor_row(config: ProcessorConfig) -> Tuple[str, str, str, str]:
        registers = config.n_registers
        dmem_kb = config.dmem_rows * config.n_banks * 4 // 1024
        return (
            f"Ours ({config.name})",
            f"{config.n_pes} PEs",
            f"{registers // 1024}K 32b registers + {dmem_kb} KB data mem.",
            str(config.n_banks),
        )

    return [cpu_row, gpu_row, processor_row(pvect), processor_row(ptree)]


def main() -> str:
    """Render Table I as text."""
    return format_table(
        ["Platform", "Compute units", "Immediate memory size", "Memory banks"],
        rows(),
        title="Table I reproduction - compute and memory details of the platforms",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
