"""Experiment-level entry points into sessions and the platform registry.

Every experiment (Fig. 2c, Fig. 4, the headline claims and the ablation
sweeps) measures throughput through the unified front door: a suite
benchmark's :class:`~repro.api.session.InferenceSession`
(:func:`repro.suite.registry.benchmark_session`), whose
:meth:`~repro.api.session.InferenceSession.throughput` resolves platform
engines by registry name — there is no platform ``if``/``elif`` dispatch
anywhere in the experiments: adding a platform to the registry makes it
available to every driver by name, and the same session object answers the
functional (typed-query) side of the workload.

The ``run_cpu`` / ``run_gpu`` / ``run_processor`` helpers are kept as
backwards-compatible conveniences for callers that already hold a model
configuration object; they construct the corresponding engine directly.
:func:`run_platform` remains the ops-level veneer for callers holding a
bare operation list rather than a model.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..analysis.metrics import PlatformResult
from ..baselines.cpu import CpuConfig
from ..baselines.gpu import GpuConfig
from ..compiler.scheduler import ScheduleOptions
from ..platforms import (
    DEFAULT_PLATFORMS,
    PLATFORM_CPU,
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    CpuEngine,
    GpuEngine,
    ProcessorEngine,
    get_engine,
)
from ..processor.config import ProcessorConfig
from ..spn.linearize import OperationList
from ..suite.registry import benchmark_names

__all__ = [
    "PLATFORM_CPU",
    "PLATFORM_GPU",
    "PLATFORM_PVECT",
    "PLATFORM_PTREE",
    "DEFAULT_PLATFORMS",
    "run_cpu",
    "run_gpu",
    "run_processor",
    "run_platform",
    "run_benchmark",
    "run_suite",
]


def run_cpu(
    ops: OperationList, benchmark: str = "", config: Optional[CpuConfig] = None
) -> PlatformResult:
    """Throughput of the CPU model (Sec. III) on ``ops``."""
    engine = get_engine(PLATFORM_CPU) if config is None else CpuEngine(config=config)
    return engine.run(ops, benchmark=benchmark)


def run_gpu(
    ops: OperationList, benchmark: str = "", config: Optional[GpuConfig] = None
) -> PlatformResult:
    """Throughput of the GPU (SIMT) model on ``ops``."""
    engine = get_engine(PLATFORM_GPU) if config is None else GpuEngine(config=config)
    return engine.run(ops, benchmark=benchmark)


def run_processor(
    ops: OperationList,
    config: ProcessorConfig,
    benchmark: str = "",
    options: Optional[ScheduleOptions] = None,
    verify: bool = True,
    mode: Optional[str] = None,
) -> PlatformResult:
    """Compile ``ops`` for ``config`` and measure it on the cycle-accurate simulator.

    With ``verify`` enabled (the default) the run uses strict mode, so every
    value transported through the register file is checked against the
    reference evaluation — throughput numbers are only reported for programs
    that compute the right answer.  ``mode="fast"`` selects the vectorized
    simulator path instead (identical cycle counts and outputs, no per-value
    checks).
    """
    engine = ProcessorEngine(config=config, verify=verify, mode=mode)
    return engine.run(ops, benchmark=benchmark, options=options)


def run_platform(
    platform: str,
    ops: OperationList,
    benchmark: str = "",
    options: Optional[ScheduleOptions] = None,
) -> PlatformResult:
    """Run ``ops`` on any registered platform engine, looked up by name."""
    return get_engine(platform).run(ops, benchmark=benchmark, options=options)


def run_benchmark(
    name: str,
    platforms: Iterable[str] = DEFAULT_PLATFORMS,
    options: Optional[ScheduleOptions] = None,
) -> Dict[str, PlatformResult]:
    """Evaluate one suite benchmark on the requested platforms.

    Dispatches through the benchmark's shared
    :class:`~repro.api.session.InferenceSession` — the same object that
    answers the benchmark's typed queries — so experiments and functional
    callers share one model binding (and its cached operation list).
    """
    from ..suite.registry import benchmark_session

    session = benchmark_session(name)
    return {p: session.throughput(p, options=options) for p in platforms}


def run_suite(
    names: Optional[Iterable[str]] = None,
    platforms: Iterable[str] = DEFAULT_PLATFORMS,
    options: Optional[ScheduleOptions] = None,
) -> Dict[str, Dict[str, PlatformResult]]:
    """Evaluate several (by default all nine) suite benchmarks."""
    names = list(names) if names is not None else benchmark_names()
    return {name: run_benchmark(name, platforms, options) for name in names}
