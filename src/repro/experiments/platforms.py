"""Shared helpers to evaluate one SPN on all four platforms of the paper.

Every experiment (Fig. 2c, Fig. 4, the headline claims and the ablation
sweeps) funnels through :func:`run_platform`, so the CPU model, the GPU model
and the custom-processor flow are always exercised with the same operation
list and the same throughput metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..analysis.metrics import PlatformResult
from ..baselines.cpu import CpuConfig, simulate_cpu
from ..baselines.gpu import GpuConfig, simulate_gpu
from ..compiler.driver import compile_operation_list
from ..compiler.scheduler import ScheduleOptions
from ..processor.config import ProcessorConfig, ptree_config, pvect_config
from ..spn.linearize import OperationList
from ..suite.registry import benchmark_names, benchmark_operation_list

__all__ = [
    "PLATFORM_CPU",
    "PLATFORM_GPU",
    "PLATFORM_PVECT",
    "PLATFORM_PTREE",
    "DEFAULT_PLATFORMS",
    "run_cpu",
    "run_gpu",
    "run_processor",
    "run_platform",
    "run_benchmark",
    "run_suite",
]

PLATFORM_CPU = "CPU"
PLATFORM_GPU = "GPU"
PLATFORM_PVECT = "Pvect"
PLATFORM_PTREE = "Ptree"
DEFAULT_PLATFORMS = (PLATFORM_CPU, PLATFORM_GPU, PLATFORM_PVECT, PLATFORM_PTREE)


def run_cpu(
    ops: OperationList, benchmark: str = "", config: Optional[CpuConfig] = None
) -> PlatformResult:
    """Throughput of the CPU model (Sec. III) on ``ops``."""
    result = simulate_cpu(ops, config)
    return PlatformResult(
        platform=PLATFORM_CPU,
        benchmark=benchmark,
        ops_per_cycle=result.ops_per_cycle,
        cycles=result.cycles,
        n_operations=result.n_operations,
    )


def run_gpu(
    ops: OperationList, benchmark: str = "", config: Optional[GpuConfig] = None
) -> PlatformResult:
    """Throughput of the GPU (SIMT) model on ``ops``."""
    result = simulate_gpu(ops, config)
    return PlatformResult(
        platform=PLATFORM_GPU,
        benchmark=benchmark,
        ops_per_cycle=result.ops_per_cycle,
        cycles=result.cycles,
        n_operations=result.n_operations,
    )


def run_processor(
    ops: OperationList,
    config: ProcessorConfig,
    benchmark: str = "",
    options: Optional[ScheduleOptions] = None,
    verify: bool = True,
) -> PlatformResult:
    """Compile ``ops`` for ``config`` and measure it on the cycle-accurate simulator.

    With ``verify`` enabled (the default) the run uses strict mode, so every
    value transported through the register file is checked against the
    reference evaluation — throughput numbers are only reported for programs
    that compute the right answer.
    """
    kernel = compile_operation_list(ops, config, options)
    result = kernel.run(evidence=None, strict=verify)
    return PlatformResult(
        platform=config.name,
        benchmark=benchmark,
        ops_per_cycle=result.ops_per_cycle,
        cycles=result.cycles,
        n_operations=result.n_operations,
    )


def run_platform(
    platform: str,
    ops: OperationList,
    benchmark: str = "",
    options: Optional[ScheduleOptions] = None,
) -> PlatformResult:
    """Run ``ops`` on one of the four named platforms of the paper."""
    if platform == PLATFORM_CPU:
        return run_cpu(ops, benchmark)
    if platform == PLATFORM_GPU:
        return run_gpu(ops, benchmark)
    if platform == PLATFORM_PVECT:
        return run_processor(ops, pvect_config(), benchmark, options)
    if platform == PLATFORM_PTREE:
        return run_processor(ops, ptree_config(), benchmark, options)
    raise ValueError(f"unknown platform {platform!r}; expected one of {DEFAULT_PLATFORMS}")


def run_benchmark(
    name: str,
    platforms: Iterable[str] = DEFAULT_PLATFORMS,
    options: Optional[ScheduleOptions] = None,
) -> Dict[str, PlatformResult]:
    """Evaluate one suite benchmark on the requested platforms."""
    ops = benchmark_operation_list(name)
    return {p: run_platform(p, ops, benchmark=name, options=options) for p in platforms}


def run_suite(
    names: Optional[Iterable[str]] = None,
    platforms: Iterable[str] = DEFAULT_PLATFORMS,
    options: Optional[ScheduleOptions] = None,
) -> Dict[str, Dict[str, PlatformResult]]:
    """Evaluate several (by default all nine) suite benchmarks."""
    names = list(names) if names is not None else benchmark_names()
    return {name: run_benchmark(name, platforms, options) for name in names}
