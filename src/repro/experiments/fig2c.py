"""Figure 2(c): CPU vs GPU throughput for different thread-block sizes.

The paper measures a CPU implementation and CUDA kernels with 1, 32, 64, 128
and 256 threads on one SPN trained on a benchmark of the Lowd-Davis suite [7]
and reports (a) that a single GPU thread is slower than the CPU, and (b) that
256 threads only bring a ~4.1x improvement over one thread — sublinear
scaling caused by synchronization overhead, shared-memory bandwidth and
divergence.  This driver regenerates the same series using the Audio
benchmark (a Lowd-Davis dataset) as the representative SPN; the benchmark
is bound once through its :class:`~repro.api.session.InferenceSession`
(the unified front door), platforms resolve from the engine registry, and
the thread sweep is expressed as re-parameterized copies of the GPU engine
(:meth:`~repro.platforms.PlatformEngine.configured`) handed to
:meth:`~repro.api.session.InferenceSession.throughput`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.report import format_bar_chart, format_table
from ..baselines.gpu import GpuConfig
from ..platforms import PLATFORM_CPU, PLATFORM_GPU, get_engine
from ..suite.registry import benchmark_session

__all__ = ["THREAD_COUNTS", "DEFAULT_BENCHMARK", "run", "main"]

THREAD_COUNTS: Sequence[int] = (1, 32, 64, 128, 256)
#: Lowd-Davis benchmark used as "an SPN trained on a benchmark in [7]".
DEFAULT_BENCHMARK = "Audio"


def run(
    benchmark: str = DEFAULT_BENCHMARK,
    thread_counts: Sequence[int] = THREAD_COUNTS,
    gpu_config: Optional[GpuConfig] = None,
) -> Dict[str, float]:
    """Return the Fig. 2(c) series: CPU plus one entry per GPU block size."""
    session = benchmark_session(benchmark)
    gpu = get_engine(PLATFORM_GPU)
    if gpu_config is not None:
        gpu = gpu.with_config(gpu_config)
    series: Dict[str, float] = {
        "CPU": session.throughput(PLATFORM_CPU).ops_per_cycle
    }
    for threads in thread_counts:
        result = session.throughput(gpu.configured(n_threads=threads))
        series[f"GPU {threads} thr"] = result.ops_per_cycle
    return series


def main(benchmark: str = DEFAULT_BENCHMARK) -> str:
    """Render Fig. 2(c) as a table plus bar chart and return the text."""
    series = run(benchmark)
    scaling = series[f"GPU {THREAD_COUNTS[-1]} thr"] / series["GPU 1 thr"]
    table = format_table(
        ["configuration", "ops/cycle"],
        [(name, value) for name, value in series.items()],
        title=f"Fig. 2(c) reproduction - benchmark: {benchmark}",
    )
    chart = format_bar_chart(series, title="throughput (operations/cycle)")
    footer = (
        f"GPU {THREAD_COUNTS[-1]}-thread speedup over 1 thread: {scaling:.1f}x "
        "(paper reports 4.1x)"
    )
    return "\n\n".join([table, chart, footer])


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
