"""Ablation and design-space sweeps beyond the paper's two configurations.

The paper evaluates exactly two design points (``Ptree`` and ``Pvect``).
These sweeps explore the surrounding design space and the compiler features
described in ``docs/architecture.md``, so that the contribution of each
architectural and compiler ingredient can be quantified:

* number of PE trees and tree depth (at a fixed 32-bank register file);
* conflict-aware vs naive register-bank allocation;
* subtree packing (several cones per tree per cycle) on vs off;
* GPU shared-memory bank allocation: graph coloring vs plain interleaving.

Every sweep is expressed as a list of :class:`SweepPoint` design points and
executed by :func:`run_sweep`, a parallel runner that

* fans the points out over a process pool (``parallel=True``), so
  multi-point sweeps saturate all cores instead of running serially;
* caches each point's result on disk under ``.cache/sweeps/`` keyed by a
  content hash of the point (kind, benchmark, **platform** and parameters —
  same point → cached hit, any changed parameter → miss), so repeated
  figure reproductions only pay for new points;
* can emit the consolidated ``BENCH_sweeps.json`` artifact
  (:func:`write_bench_json`) consumed by CI and the benchmark harness.

Every point names the platform engine it runs on, and
:func:`evaluate_point` obtains that engine from the registry
(:func:`repro.platforms.get_engine`) — the sweep recipes only decide *how*
to parameterize it, never hand-wire a model.

The module is also a command-line entry point::

    PYTHONPATH=src python -m repro.experiments.sweeps --json BENCH_sweeps.json

which runs all sweeps for one benchmark (parallel, cached) plus the
reference-vs-vectorized engine speedup measurement
(:func:`measure_engine_speedup`) and the strict-vs-fast simulator speedup
measurement (:func:`measure_simulator_speedup`), and writes the JSON
artifact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.report import format_table
from ..compiler.scheduler import ScheduleOptions
from ..platforms import (
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    get_engine,
)

__all__ = [
    "SweepPoint",
    "SweepResult",
    "cache_key",
    "run_sweep",
    "all_sweep_points",
    "filter_points",
    "measure_engine_speedup",
    "measure_simulator_speedup",
    "measure_query_speedup",
    "measure_classify_speedup",
    "measure_tape_memory",
    "measure_lifecycle",
    "measure_observability_overhead",
    "write_bench_json",
    "update_bench_json",
    "tree_arrangement_sweep",
    "allocation_ablation",
    "packing_ablation",
    "gpu_bank_allocation_ablation",
    "render_sweeps",
    "main",
]

#: Benchmark used by default for the sweeps (mid-sized, Lowd-Davis suite).
DEFAULT_BENCHMARK = "KDDCup2k"

#: (name, n_trees, n_levels) points sharing the 32-bank register file.
TREE_ARRANGEMENTS: Tuple[Tuple[str, int, int], ...] = (
    ("16 trees x 1 level (Pvect)", 16, 1),
    ("8 trees x 2 levels", 8, 2),
    ("4 trees x 3 levels", 4, 3),
    ("2 trees x 4 levels (Ptree)", 2, 4),
)

#: Default location of the on-disk result cache (relative to the cwd).
DEFAULT_CACHE_DIR = Path(".cache") / "sweeps"

#: Bumped whenever the meaning of cached values changes; part of every key.
#: v2: sweep points carry the tape execution mode.
CACHE_VERSION = 2


# --------------------------------------------------------------------------- #
# Design points
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepPoint:
    """One design point of a sweep: what to run and with which parameters.

    ``kind`` selects the evaluation recipe (see :func:`evaluate_point`),
    ``platform`` names the engine the point runs on (a registry key, part of
    the on-disk cache identity), ``execution`` the tape execution mode its
    session uses (``""``: the repository default — part of the cache
    identity, so planned/sharded/legacy measurements never collide), and
    ``params`` is a sorted tuple of ``(name, value)`` pairs so that points
    are hashable, comparable and JSON-stable.
    """

    kind: str
    benchmark: str
    label: str
    platform: str = ""
    execution: str = ""
    params: Tuple[Tuple[str, object], ...] = ()

    def param(self, name: str) -> object:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(f"sweep point {self.label!r} has no parameter {name!r}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "label": self.label,
            "platform": self.platform,
            "execution": self.execution,
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one design point: its measured values plus provenance."""

    point: SweepPoint
    values: Dict[str, float]
    cached: bool
    elapsed: float

    @property
    def ops_per_cycle(self) -> float:
        return self.values["ops_per_cycle"]


def _point(
    kind: str, benchmark: str, label: str, platform: str, **params: object
) -> SweepPoint:
    return SweepPoint(
        kind=kind,
        benchmark=benchmark,
        label=label,
        platform=platform,
        params=tuple(sorted(params.items())),
    )


def tree_arrangement_points(
    benchmark: str = DEFAULT_BENCHMARK,
    arrangements: Iterable[Tuple[str, int, int]] = TREE_ARRANGEMENTS,
) -> List[SweepPoint]:
    return [
        _point(
            "tree_arrangement",
            benchmark,
            name,
            PLATFORM_PTREE,
            n_trees=n_trees,
            n_levels=n_levels,
        )
        for name, n_trees, n_levels in arrangements
    ]


def allocation_points(benchmark: str = DEFAULT_BENCHMARK) -> List[SweepPoint]:
    return [
        _point(
            "allocation",
            benchmark,
            f"{alloc}/{config}",
            config,
            conflict_aware=(alloc == "conflict-aware"),
        )
        for alloc in ("conflict-aware", "naive")
        for config in (PLATFORM_PVECT, PLATFORM_PTREE)
    ]


def packing_points(benchmark: str = DEFAULT_BENCHMARK) -> List[SweepPoint]:
    return [
        _point(
            "packing", benchmark, label, PLATFORM_PTREE, pack=(label == "packing on")
        )
        for label in ("packing on", "packing off")
    ]


def gpu_bank_points(benchmark: str = DEFAULT_BENCHMARK) -> List[SweepPoint]:
    return [
        _point("gpu_banks", benchmark, label, PLATFORM_GPU, allocation=allocation)
        for label, allocation in (
            ("graph coloring", "coloring"),
            ("interleaved", "interleaved"),
        )
    ]


def all_sweep_points(benchmark: str = DEFAULT_BENCHMARK) -> List[SweepPoint]:
    """The full design space covered by this module, as a flat point list."""
    return (
        tree_arrangement_points(benchmark)
        + allocation_points(benchmark)
        + packing_points(benchmark)
        + gpu_bank_points(benchmark)
    )


def filter_points(
    points: Sequence[SweepPoint], platforms: Optional[Sequence[str]] = None
) -> List[SweepPoint]:
    """Keep only the points running on one of ``platforms`` (``None``: all).

    Raises ``ValueError`` when a requested platform matches no point, so a
    typo on the command line fails loudly instead of silently running an
    empty sweep.
    """
    if platforms is None:
        return list(points)
    wanted = set(platforms)
    if not wanted:
        raise ValueError(
            "platforms filter is empty; pass None to run every platform"
        )
    present = {p.platform for p in points}
    unknown = wanted - present
    if unknown:
        known = ", ".join(sorted(present))
        raise ValueError(
            f"no sweep points on platform(s) {sorted(unknown)}; "
            f"platforms in this sweep: {known}"
        )
    return [p for p in points if p.platform in wanted]


def evaluate_point(point: SweepPoint) -> Dict[str, float]:
    """Evaluate one design point (runs in a worker process under ``parallel``).

    The benchmark is bound through its shared
    :class:`~repro.api.session.InferenceSession`
    (:func:`repro.suite.registry.benchmark_session`) and the platform
    engine always comes from the registry
    (:func:`repro.platforms.get_engine`); the ``kind`` recipe only decides
    how the engine is re-parameterized and which scheduler options apply
    before the session measures it
    (:meth:`~repro.api.session.InferenceSession.throughput`).
    """
    from ..suite.registry import benchmark_session

    if point.kind not in ("tree_arrangement", "allocation", "packing", "gpu_banks"):
        raise ValueError(f"unknown sweep point kind {point.kind!r}")
    session = benchmark_session(point.benchmark, execution=point.execution or None)
    engine = get_engine(point.platform)
    options: Optional[ScheduleOptions] = None
    if point.kind == "tree_arrangement":
        engine = engine.configured(
            name=point.label,
            n_trees=int(point.param("n_trees")),
            n_levels=int(point.param("n_levels")),
            n_banks=32,
            bank_depth=64,
        )
    elif point.kind == "allocation":
        options = ScheduleOptions(
            conflict_aware_allocation=bool(point.param("conflict_aware"))
        )
    elif point.kind == "packing":
        options = ScheduleOptions(pack_multiple_cones=bool(point.param("pack")))
    elif point.kind == "gpu_banks":
        engine = engine.configured(bank_allocation=str(point.param("allocation")))
    result = session.throughput(engine, options=options)
    return {"ops_per_cycle": float(result.ops_per_cycle)}


def _evaluate_point_timed(point: SweepPoint) -> Tuple[Dict[str, float], float]:
    start = time.perf_counter()
    values = evaluate_point(point)
    return values, time.perf_counter() - start


# --------------------------------------------------------------------------- #
# Keyed on-disk cache
# --------------------------------------------------------------------------- #
_CODE_FINGERPRINT: Optional[str] = None


def _code_fingerprint() -> str:
    """Content hash of the whole ``repro`` package source, computed once.

    Folding this into every cache key means any code change — simulator,
    scheduler, suite profiles — invalidates the on-disk sweep cache, so a
    stale entry can never masquerade as a fresh measurement.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode("utf-8"))
            digest.update(source.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()[:16]
    return _CODE_FINGERPRINT


def cache_key(point: SweepPoint, code: Optional[str] = None) -> str:
    """Stable content hash of a design point (the on-disk cache key).

    Any change to the point's kind, benchmark, execution mode or parameters
    — or to :data:`CACHE_VERSION` or the ``repro`` package source
    (:func:`_code_fingerprint`) — yields a different key, so stale entries
    are never returned for a modified configuration or modified code.
    ``code`` lets a caller that keys many points pass the package
    fingerprint once (:func:`run_sweep` hoists it per call) instead of
    re-resolving it per point.
    """
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "code": code if code is not None else _code_fingerprint(),
            **point.as_dict(),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def _cache_path(cache_dir: Path, point: SweepPoint, code: Optional[str]) -> Path:
    return Path(cache_dir) / f"{cache_key(point, code)}.json"


def _cache_load(
    cache_dir: Path, point: SweepPoint, code: Optional[str]
) -> Optional[Dict[str, float]]:
    path = _cache_path(cache_dir, point, code)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, ValueError):
        return None
    if entry.get("point") != _jsonable(point.as_dict()):
        return None  # hash collision or hand-edited file: recompute
    values = entry.get("values")
    return dict(values) if isinstance(values, dict) else None


def _cache_store(
    cache_dir: Path, point: SweepPoint, values: Mapping[str, float], code: Optional[str]
) -> None:
    path = _cache_path(cache_dir, point, code)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"point": point.as_dict(), "values": dict(values)}, handle, default=str)
    os.replace(tmp, path)


def _jsonable(value: object) -> object:
    """Round-trip a value through JSON (tuples -> lists, keys -> strings)."""
    return json.loads(json.dumps(value, default=str))


# --------------------------------------------------------------------------- #
# Parallel runner
# --------------------------------------------------------------------------- #
def run_sweep(
    points: Sequence[SweepPoint],
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache_dir: Optional[Path] = DEFAULT_CACHE_DIR,
) -> List[SweepResult]:
    """Evaluate a list of design points, in parallel and with caching.

    Cached points (``cache_dir`` set and holding a valid entry; pass
    ``cache_dir=None`` to disable caching) are
    returned immediately; the remaining points are fanned out over a
    ``ProcessPoolExecutor`` with ``max_workers`` processes (default: one per
    CPU, capped by the number of misses).  With ``parallel=False``, or when
    at most one point misses the cache, everything runs in-process.  Results
    are returned in the order of ``points``.
    """
    caching = cache_dir is not None
    # The package source hash is part of every key; resolve it once per
    # call instead of once per point (it digests every .py file on first
    # use, and worker processes must never each redo that).
    code = _code_fingerprint() if caching else None
    results: List[Optional[SweepResult]] = [None] * len(points)
    misses: List[int] = []
    for i, point in enumerate(points):
        values = _cache_load(cache_dir, point, code) if caching else None
        if values is not None:
            results[i] = SweepResult(point=point, values=values, cached=True, elapsed=0.0)
        else:
            misses.append(i)

    if misses:
        miss_points = [points[i] for i in misses]
        if parallel and len(miss_points) > 1:
            workers = max_workers or min(len(miss_points), os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(_evaluate_point_timed, miss_points))
        else:
            outcomes = [_evaluate_point_timed(p) for p in miss_points]
        for i, (values, elapsed) in zip(misses, outcomes):
            results[i] = SweepResult(
                point=points[i], values=values, cached=False, elapsed=elapsed
            )
            if caching:
                _cache_store(cache_dir, points[i], values, code)

    return [r for r in results if r is not None]


# --------------------------------------------------------------------------- #
# Engine speedup measurement (vectorized tape vs reference execution)
# --------------------------------------------------------------------------- #
def measure_engine_speedup(
    n_vars: int = 128,
    n_samples: int = 1000,
    repeats: int = 3,
    seed: int = 5,
) -> Dict[str, float]:
    """Time the reference executors against the vectorized tape.

    Builds a deterministic RAT-SPN with >= 1k nodes, draws an
    ``n_samples``-row evidence batch, and measures three ways of computing
    the same root values:

    * ``t_reference`` — the row-by-row interpretation of the flat operation
      list (Algorithm 1), the repository's reference execution path
      (measured once; it dominates the runtime);
    * ``t_node_batch`` — the per-node NumPy walk of
      :func:`repro.spn.evaluate.evaluate_batch` (best of ``repeats``);
    * ``t_vectorized`` — the compiled tape of :mod:`repro.spn.compiled`
      (best of ``repeats``), plus its one-off ``t_compile``.

    Returns a flat dict with the timings, the derived speedups and the
    network's shape, ready for inclusion in ``BENCH_sweeps.json``.
    """
    import numpy as np

    from ..baselines.cpu import execute_baseline
    from ..spn.compiled import compile_tape
    from ..spn.evaluate import evaluate_batch
    from ..spn.generate import RatSpnConfig, generate_rat_spn, random_evidence
    from ..spn.linearize import linearize

    spn = generate_rat_spn(
        RatSpnConfig(
            n_vars=n_vars, depth=n_vars, repetitions=2, n_sums=2,
            split_balance=0.1, seed=seed,
        )
    )
    ops = linearize(spn)
    data = random_evidence(n_vars, observed_fraction=0.8, seed=seed, n_samples=n_samples)

    start = time.perf_counter()
    tape = compile_tape(ops)
    t_compile = time.perf_counter() - start

    def best_of(fn, n: int) -> Tuple[float, "np.ndarray"]:
        best, out = float("inf"), None
        for _ in range(max(1, n)):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return best, out

    t_vectorized, vec = best_of(lambda: tape.execute_batch(data), repeats)
    t_node_batch, ref_batch = best_of(lambda: evaluate_batch(spn, data), repeats)
    t_reference, ref = best_of(lambda: execute_baseline(ops, data, engine="python"), 1)

    if not np.allclose(vec, ref, rtol=1e-9, atol=0.0) or not np.allclose(
        vec, ref_batch, rtol=1e-9, atol=0.0
    ):
        raise AssertionError("engines disagree during the speedup measurement")

    return {
        "n_nodes": len(spn.topological_order()),
        "n_operations": ops.n_operations,
        "n_levels": ops.depth(),
        "n_samples": int(n_samples),
        "t_compile_s": t_compile,
        "t_reference_s": t_reference,
        "t_node_batch_s": t_node_batch,
        "t_vectorized_s": t_vectorized,
        "speedup_vs_reference": t_reference / t_vectorized,
        "speedup_vs_node_batch": t_node_batch / t_vectorized,
    }


# --------------------------------------------------------------------------- #
# Simulator speedup measurement (strict interpreter vs vectorized fast mode)
# --------------------------------------------------------------------------- #
def measure_simulator_speedup(
    n_vars: int = 224,
    repetitions: int = 5,
    repeats: int = 3,
    seed: int = 7,
) -> Dict[str, float]:
    """Time the strict (interpreted) simulator against the fast tape mode.

    Builds a deterministic RAT-SPN large enough that its compiled ``Ptree``
    program exceeds 1000 VLIW instructions, compiles it once, and measures:

    * ``t_strict`` — one :class:`~repro.processor.simulator.Simulator` run in
      strict mode (per-value verification against a precomputed reference
      slot vector; best of ``repeats``);
    * ``t_fast_cold`` — the first fast-mode run, including tape
      precompilation and the content-keyed cache insert;
    * ``t_fast`` — a warm fast-mode run reusing the kernel's memoized tape
      (the steady-state path of ``CompiledKernel.run(strict=False)``; best
      of ``repeats``).

    The two modes are also cross-checked for exact agreement, so the
    recorded speedup always describes runs that produced identical cycle
    counts and outputs.  Returns a flat dict ready for inclusion in
    ``BENCH_sweeps.json``.
    """
    from ..compiler.driver import compile_operation_list
    from ..processor import fastsim
    from ..processor.config import ptree_config
    from ..processor.simulator import (
        MODE_FAST,
        MODE_STRICT,
        Simulator,
        cross_check_modes,
    )
    from ..spn.generate import RatSpnConfig, generate_rat_spn
    from ..spn.linearize import linearize

    spn = generate_rat_spn(
        RatSpnConfig(
            n_vars=n_vars, depth=n_vars, repetitions=repetitions, n_sums=2,
            split_balance=0.1, seed=seed,
        )
    )
    ops = linearize(spn)
    config = ptree_config()
    kernel = compile_operation_list(ops, config)
    program = kernel.program
    input_vector = ops.input_vector(None)
    expected = ops.execute_values(input_vector)

    def best_of(fn, n: int) -> float:
        best = float("inf")
        for _ in range(max(1, n)):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    strict_sim = Simulator(config, strict=True, mode=MODE_STRICT)
    t_strict = best_of(lambda: strict_sim.run(program, input_vector, expected), repeats)

    fastsim.clear_cache()
    fast_sim = Simulator(config, mode=MODE_FAST)
    t0 = time.perf_counter()
    fast_sim.run(program, input_vector)
    t_fast_cold = time.perf_counter() - t0
    precompiled = kernel.fast_form()
    t_fast = best_of(
        lambda: fast_sim.run(program, input_vector, precompiled=precompiled), repeats
    )

    cross_check_modes(program, input_vector, config, expected)

    return {
        "n_instructions": program.n_instructions,
        "n_operations": program.n_arith_ops,
        "t_strict_s": t_strict,
        "t_fast_cold_s": t_fast_cold,
        "t_fast_s": t_fast,
        "speedup_fast_vs_strict": t_strict / t_fast,
        "speedup_fast_cold_vs_strict": t_strict / t_fast_cold,
    }


# --------------------------------------------------------------------------- #
# Query-API speedup measurement (batched Conditional vs per-row scalar path)
# --------------------------------------------------------------------------- #
#: Benchmark used by the query-API measurement: the suite network with the
#: widest gap between the per-row reference walk and the batched tape.
QUERY_BENCHMARK = "Netflix"


def measure_query_speedup(
    benchmark: str = QUERY_BENCHMARK,
    n_rows: int = 256,
    n_scalar_rows: int = 48,
    repeats: int = 5,
    seed: int = 21,
) -> Dict[str, float]:
    """Time a batched ``Conditional`` against the per-row scalar path.

    Conditionals are the newly-batchable workload of the typed query API:
    one :class:`~repro.api.queries.Conditional` batch is planned as exactly
    **two** log-domain tape passes (joint and evidence, subtracted),
    regardless of the row count, while the scalar path pays two *per-row*
    network evaluations — plus construction and dispatch — per answer.

    Draws ``n_rows`` random evidence rows on the benchmark (one queried
    variable per row, the rest partially observed) and measures three ways
    of answering the same conditionals:

    * ``t_scalar_reference`` — the per-row scalar path as it existed before
      the typed API (and still exists as ``engine="python"``): one
      single-row query at a time, each executing two log-domain *reference
      walks* of the network.  Conditionals could not reach the batched
      engines at all before this API — this is the honest "what a caller
      previously paid per answer" baseline (measured on
      ``n_scalar_rows`` rows, best of 3 loops; it dominates the runtime).
    * ``t_scalar_session`` — the deprecated scalar wrapper
      (:func:`repro.spn.queries.conditional`), now itself a single-row
      vectorized session per call.
    * ``t_batched`` — one batched ``session.run(Conditional(...))`` over
      all ``n_rows`` rows (best of ``repeats``).

    The batched result is asserted **bit-identical** to the per-row
    vectorized path (the tape kernels are elementwise across rows, and the
    scalar wrapper *is* a single-row session) and ``allclose`` to the
    reference walk.  Returns a flat dict — timings, derived speedups, the
    plan's evaluation count — ready for the ``query_api`` section of
    ``BENCH_sweeps.json``.  The headline ``speedup_batched_vs_scalar``
    compares against the reference per-row path.
    """
    import warnings

    import numpy as np

    from ..api import Conditional, InferenceSession
    from ..spn.generate import random_evidence
    from ..spn.queries import conditional
    from ..suite.registry import build_benchmark

    spn = build_benchmark(benchmark)
    session = InferenceSession(benchmark, warm=True)
    reference_session = InferenceSession(benchmark, engine="python")
    n_vars = session.n_vars
    rng = np.random.default_rng(seed)
    evidence = random_evidence(n_vars, observed_fraction=0.5, seed=seed, n_samples=n_rows)
    query = np.full_like(evidence, -1)
    queried = rng.integers(0, n_vars, size=n_rows)
    evidence[np.arange(n_rows), queried] = -1  # the queried var is never evidence
    query[np.arange(n_rows), queried] = rng.integers(0, 2, size=n_rows)

    batch = Conditional(evidence=evidence, query=query)
    plan = session.plan(batch)

    before = session.evaluations
    start = time.perf_counter()
    batched = session.run(batch)
    t_batched = time.perf_counter() - start
    passes = session.evaluations - before
    for _ in range(max(0, repeats - 1)):
        start = time.perf_counter()
        again = session.run(batch)
        t_batched = min(t_batched, time.perf_counter() - start)
        if not np.array_equal(again, batched):  # pragma: no cover - determinism guard
            raise AssertionError("batched conditional is not deterministic")

    # Per-row reference path: one single-row query per answer, two log
    # reference walks each (best of 3 loops over the measured prefix).
    n_scalar = min(n_scalar_rows, n_rows)
    singles = [
        Conditional(evidence=evidence[i], query=query[i]) for i in range(n_scalar)
    ]
    t_scalar_reference = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        reference = np.array([reference_session.run(q)[0] for q in singles])
        t_scalar_reference = min(t_scalar_reference, time.perf_counter() - start)
    t_scalar_reference /= n_scalar

    # Deprecated scalar wrapper (single-row vectorized sessions), per row —
    # best of 3 loops, symmetric with the reference-path timing above.
    t_scalar_session = float("inf")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for _ in range(3):
            start = time.perf_counter()
            wrapper = np.array(
                [
                    conditional(
                        spn,
                        {int(queried[i]): int(query[i, queried[i]])},
                        {int(v): int(evidence[i, v]) for v in range(n_vars) if evidence[i, v] >= 0},
                    )
                    for i in range(n_scalar)
                ]
            )
            t_scalar_session = min(t_scalar_session, time.perf_counter() - start)
    t_scalar_session /= n_scalar

    if not np.array_equal(batched[:n_scalar], wrapper):
        raise AssertionError(
            "batched Conditional disagrees with the per-row scalar wrapper"
        )
    if not np.allclose(batched[:n_scalar], reference, rtol=1e-9, atol=0.0):
        raise AssertionError(
            "batched Conditional disagrees with the per-row reference walk"
        )

    t_batched_per_row = t_batched / n_rows
    return {
        "benchmark": benchmark,
        "n_rows": int(n_rows),
        "n_vars": int(n_vars),
        "tape_passes_per_batch": int(passes),
        "planned_passes": int(plan.n_evaluations),
        "t_scalar_reference_per_row_s": t_scalar_reference,
        "t_scalar_session_per_row_s": t_scalar_session,
        "t_batched_s": t_batched,
        "throughput_scalar_reference_rps": 1.0 / t_scalar_reference,
        "throughput_scalar_session_rps": 1.0 / t_scalar_session,
        "throughput_batched_rps": n_rows / t_batched,
        "speedup_batched_vs_scalar": t_scalar_reference / t_batched_per_row,
        "speedup_batched_vs_scalar_session": t_scalar_session / t_batched_per_row,
        "bit_identical": True,
    }


# --------------------------------------------------------------------------- #
# Analysis-query speedup measurement (batched Classify vs per-state scalars)
# --------------------------------------------------------------------------- #
def measure_classify_speedup(
    benchmark: str = QUERY_BENCHMARK,
    n_rows: int = 256,
    n_scalar_rows: int = 48,
    repeats: int = 5,
    seed: int = 23,
) -> Dict[str, float]:
    """Time a batched ``Classify`` against the per-state Conditional loop.

    ``Classify`` is predict_proba over a target variable: for every row,
    the posterior ``P(target = s | e)`` over all of the target's states.
    Without the analysis kind, a caller assembles it from conditionals —
    one single-row :class:`~repro.api.queries.Conditional` per *(row,
    state)* pair, i.e. ``2 * n_rows * n_states`` tape passes.  The batched
    kind plans the whole sweep as exactly **two** log-domain passes (one
    joint sweep over every state of every row, one evidence pass) no
    matter the batch size or state count.

    Both paths run the same vectorized engine, so the batched posteriors
    are asserted **bit-identical** to the per-state loop (the tape kernels
    are elementwise across rows, and the subtraction/exponentiation is the
    same scalar arithmetic).  The loop is measured on ``n_scalar_rows``
    rows (best of 3 loops); the batch on all ``n_rows`` (best of
    ``repeats``).  Returns a flat dict for the ``analysis_queries``
    section of ``BENCH_sweeps.json``, including the planned/observed pass
    counts of every analysis kind on this benchmark.
    """
    import numpy as np

    from ..api import (
        Classify,
        Conditional,
        Entropy,
        Expectation,
        InferenceSession,
        MutualInformation,
        Sample,
    )
    from ..spn.generate import random_evidence

    session = InferenceSession(benchmark, warm=True)
    n_vars = session.n_vars
    evidence = random_evidence(
        n_vars, observed_fraction=0.5, seed=seed, n_samples=n_rows
    )
    rng = np.random.default_rng(seed)
    target = int(rng.integers(0, n_vars))
    evidence[:, target] = -1  # the classified variable is never evidence

    batch = Classify(evidence=evidence, target=target)
    plan = session.plan(batch)
    states = session.domains()[target]

    before = session.evaluations
    start = time.perf_counter()
    batched = session.run(batch)
    t_batched = time.perf_counter() - start
    passes = session.evaluations - before
    for _ in range(max(0, repeats - 1)):
        start = time.perf_counter()
        again = session.run(batch)
        t_batched = min(t_batched, time.perf_counter() - start)
        if not np.array_equal(again, batched):  # pragma: no cover - determinism guard
            raise AssertionError("batched Classify is not deterministic")

    # Per-state loop: one single-row Conditional per (row, state) pair,
    # through the same vectorized session — the honest "assemble
    # predict_proba yourself" baseline (best of 3 loops).
    n_scalar = min(n_scalar_rows, n_rows)
    singles = []
    for i in range(n_scalar):
        for s in states:
            query = np.full(n_vars, -1, dtype=np.int64)
            query[target] = s
            singles.append(Conditional(evidence=evidence[i], query=query))
    t_loop = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        loop = np.array([session.run(q)[0] for q in singles])
        t_loop = min(t_loop, time.perf_counter() - start)
    t_loop /= n_scalar

    if not np.array_equal(batched[:n_scalar].ravel(), loop):
        raise AssertionError(
            "batched Classify disagrees with the per-state Conditional loop"
        )

    # Plan shapes of the remaining analysis kinds on this benchmark — the
    # fixed pass counts the docs promise, recorded for the artifact.
    free = np.array(evidence[:8], copy=True)
    analysis_passes = {
        "classify": plan.n_evaluations,
        "expectation": session.plan(
            Expectation(evidence=free, variables=(0, 1))
        ).n_evaluations,
        "entropy": session.plan(
            Entropy(evidence=free, variables=(0, 1))
        ).n_evaluations,
        "mutual_information": session.plan(
            MutualInformation(evidence=free, variables=(0, 1, 2))
        ).n_evaluations,
        "sample_free_vars": session.plan(
            Sample(evidence=free, n_samples=2)
        ).n_evaluations,
    }

    t_batched_per_row = t_batched / n_rows
    return {
        "benchmark": benchmark,
        "n_rows": int(n_rows),
        "n_vars": int(n_vars),
        "n_states": int(len(states)),
        "target": int(target),
        "tape_passes_per_batch": int(passes),
        "planned_passes": int(plan.n_evaluations),
        "analysis_passes": analysis_passes,
        "t_per_state_loop_per_row_s": t_loop,
        "t_batched_s": t_batched,
        "throughput_loop_rps": 1.0 / t_loop,
        "throughput_batched_rps": n_rows / t_batched,
        "speedup_batched_vs_loop": t_loop / t_batched_per_row,
        "bit_identical": True,
    }


# --------------------------------------------------------------------------- #
# Tape-memory measurement (memory-planned executor vs the legacy slot matrix)
# --------------------------------------------------------------------------- #
def measure_tape_memory(
    benchmark: Optional[str] = None,
    n_rows: int = 8192,
    repeats: int = 3,
    seed: int = 33,
) -> Dict[str, object]:
    """Measure the memory-planned tape executor against the legacy one.

    The legacy executor materializes a dense ``(n_slots, n_rows)`` slot
    matrix per row block; the planner (:mod:`repro.spn.memplan`) shrinks
    the working set to ``plan.n_physical`` rows via liveness-based slot
    reuse, lazy input encoding and broadcast-constant operands.  On the
    largest suite profile (``benchmark=None`` picks it by tape slots) this
    measures, over an ``n_rows`` batch:

    * **peak slot-buffer memory** per row — ``8 * n_slots`` legacy vs
      ``8 * plan.n_physical`` planned (the ``memory_reduction`` ratio);
    * **throughput** — legacy vs planned wall-clock in both domains,
      interleaved within each repeat so machine drift hits all executors
      alike (best of ``repeats``);
    * **shard scaling** — planned single-thread vs sharded execution with
      the thread count the CPU platform engine recommends
      (:meth:`repro.platforms.base.PlatformEngine.execution_options`),
      reported for the log domain, whose ``logaddexp`` kernels release the
      GIL for the longest stretches.  Scaling above 1 needs real cores:
      ``cpu_count`` travels with the result so the benchmark gate can
      restrict itself to hosts with >= 4.

    All three executors' outputs are asserted **bit-identical**
    (``array_equal``) before any number is reported.  Returns a flat dict
    for the ``tape_memory`` section of ``BENCH_sweeps.json``.
    """
    import numpy as np

    from ..platforms import PLATFORM_CPU, get_engine
    from ..spn.generate import random_evidence
    from ..suite.registry import benchmark_n_vars, benchmark_names, benchmark_tape

    if benchmark is None:
        benchmark = max(benchmark_names(), key=lambda n: benchmark_tape(n).n_slots)
    tape = benchmark_tape(benchmark)
    plan = tape.memory_plan()
    n_vars = benchmark_n_vars(benchmark)
    data = random_evidence(n_vars, observed_fraction=0.6, seed=seed, n_samples=n_rows)

    sharded = get_engine(PLATFORM_CPU).execution_options()
    runs = {
        "legacy": lambda log: tape.execute_batch(data, log_domain=log, execution="legacy"),
        "planned": lambda log: tape.execute_batch(data, log_domain=log),
        "sharded": lambda log: tape.execute_batch(data, log_domain=log, execution=sharded),
    }
    times: Dict[str, float] = {}
    outputs: Dict[str, "np.ndarray"] = {}
    for log in (False, True):
        suffix = "_log" if log else ""
        for _ in range(max(1, repeats)):
            for name, fn in runs.items():  # interleaved: drift hits all alike
                start = time.perf_counter()
                out = fn(log)
                elapsed = time.perf_counter() - start
                key = name + suffix
                if elapsed < times.get(key, float("inf")):
                    times[key] = elapsed
                outputs[key] = out
        for name in ("planned", "sharded"):
            if not np.array_equal(
                outputs[name + suffix], outputs["legacy" + suffix], equal_nan=True
            ):
                raise AssertionError(
                    f"{name} execution is not bit-identical to legacy "
                    f"(log_domain={log})"
                )

    return {
        "benchmark": benchmark,
        "n_rows": int(n_rows),
        "n_vars": int(n_vars),
        "n_slots": int(tape.n_slots),
        "n_physical": int(plan.n_physical),
        "max_live": int(plan.max_live),
        "n_kernels": int(plan.n_kernels),
        "memory_reduction": tape.n_slots / plan.n_physical,
        "peak_bytes_per_row_legacy": 8 * int(tape.n_slots),
        "peak_bytes_per_row_planned": 8 * int(plan.n_physical),
        "t_legacy_s": times["legacy"],
        "t_planned_s": times["planned"],
        "t_sharded_s": times["sharded"],
        "t_legacy_log_s": times["legacy_log"],
        "t_planned_log_s": times["planned_log"],
        "t_sharded_log_s": times["sharded_log"],
        "throughput_planned_rps": n_rows / times["planned"],
        "speedup_planned_vs_legacy": times["legacy"] / times["planned"],
        "speedup_planned_vs_legacy_log": times["legacy_log"] / times["planned_log"],
        "sharded_threads": int(sharded.n_threads),
        "sharded_scaling_log": times["planned_log"] / times["sharded_log"],
        "cpu_count": int(os.cpu_count() or 1),
        "bit_identical": True,
    }


# --------------------------------------------------------------------------- #
# Model-lifecycle measurement (AOT cold start + hot-swap under load)
# --------------------------------------------------------------------------- #
def measure_lifecycle(
    n_vars: int = 24,
    n_train_rows: int = 2000,
    repeats: int = 3,
    n_requests: int = 200,
    request_rows: int = 8,
    seed: int = 20,
) -> Dict[str, object]:
    """Measure the AOT artifact path against recompile-from-source.

    Two costs bracket a model's route to production
    (:mod:`repro.lifecycle`):

    * **cold start** — the recompile path (dataset → LearnSPN →
      linearize → compile → memory-plan → session) vs the AOT path
      (:func:`~repro.lifecycle.artifact.load_artifact` + a session that
      adopts the shipped tape and plan), best of ``repeats`` each; the
      loaded session's golden replay is asserted bit-identical
      (:func:`~repro.lifecycle.golden.replay_deviation` == 0) to the
      freshly compiled one before any number is reported;
    * **hot swap** — a blocking ``n_requests``-request log-likelihood
      stream against an :class:`~repro.serving.InferenceServer` while a
      background thread publishes a retrained (bit-identical) candidate
      version through the full shadow-validated
      :meth:`~repro.serving.InferenceServer.publish` path.  Every
      response is checked against the offline expectation; a request
      counts as *lost* if it errors or returns anything else.  Per-request
      latency percentiles record the swap's pause, and ``t_publish_s`` is
      the full publish cost including the golden-replay validation.

    Returns a flat dict for the ``model_lifecycle`` section of
    ``BENCH_sweeps.json``.
    """
    import tempfile
    import threading

    import numpy as np

    from ..api.queries import LogLikelihood
    from ..lifecycle.artifact import load_artifact, save_artifact
    from ..lifecycle.golden import golden_evidence, golden_replay, replay_deviation
    from ..lifecycle.train import TrainingJob, train_artifact
    from ..serving import InferenceServer
    from ..spn.datasets import DatasetSpec
    from ..spn.generate import random_evidence

    def job(version: str) -> TrainingJob:
        return TrainingJob(
            name="bench-lifecycle",
            dataset=DatasetSpec(n_vars=n_vars, n_rows=n_train_rows, seed=seed),
            version=version,
        )

    # Recompile path: everything from raw data to a query-ready session.
    t_recompile = float("inf")
    artifact = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        artifact = train_artifact(job("1"))
        fresh = artifact.session()
        t_recompile = min(t_recompile, time.perf_counter() - start)

    with tempfile.TemporaryDirectory() as tmp:
        path = save_artifact(artifact, Path(tmp) / "bench-lifecycle.json")
        artifact_bytes = path.stat().st_size
        # AOT cold start: parse, integrity-check, adopt tape + plan.
        t_cold = float("inf")
        cold = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            cold = load_artifact(path).session()
            t_cold = min(t_cold, time.perf_counter() - start)

    evidence = golden_evidence(n_vars)
    deviation = replay_deviation(
        golden_replay(cold, evidence), golden_replay(fresh, evidence)
    )
    if deviation != 0.0:
        raise AssertionError(
            f"cold-started session is not bit-identical to the fresh compile "
            f"(deviation={deviation})"
        )

    # The candidate: the same job retrained under a new version label —
    # identical weights, so the shadow validation's golden replay passes at
    # tolerance 0 and every in-flight answer stays byte-comparable.
    candidate = train_artifact(job("2"))
    request_evidence = random_evidence(
        n_vars, observed_fraction=0.5, seed=seed, n_samples=request_rows
    )
    want = np.asarray(fresh.run(LogLikelihood(evidence=request_evidence)))

    latencies: List[float] = []
    lost = 0
    publish_elapsed: List[float] = []
    with InferenceServer(models=[artifact]) as server:

        def swap() -> None:
            start = time.perf_counter()
            server.publish("bench-lifecycle", "2", candidate)
            publish_elapsed.append(time.perf_counter() - start)

        swapper = threading.Thread(target=swap)
        for i in range(n_requests):
            if i == n_requests // 3:
                swapper.start()
            start = time.perf_counter()
            try:
                value = server.query(
                    "bench-lifecycle", request_evidence, kind="log_likelihood"
                )
            except Exception:
                lost += 1
                continue
            latencies.append(time.perf_counter() - start)
            if not np.array_equal(np.asarray(value), want):
                lost += 1
        swapper.join(timeout=60)
        live_after = server.live_version("bench-lifecycle")

    lat = np.asarray(latencies) if latencies else np.asarray([float("nan")])
    return {
        "n_vars": int(n_vars),
        "n_train_rows": int(n_train_rows),
        "artifact_bytes": int(artifact_bytes),
        "t_recompile_s": t_recompile,
        "t_cold_start_s": t_cold,
        "cold_start_speedup": t_recompile / t_cold,
        "golden_deviation": float(deviation),
        "n_requests": int(n_requests),
        "request_rows": int(request_rows),
        "requests_lost": int(lost),
        "t_publish_s": float(publish_elapsed[0]) if publish_elapsed else float("nan"),
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p99_ms": float(np.percentile(lat, 99) * 1e3),
        "latency_max_ms": float(lat.max() * 1e3),
        "live_version_after_swap": live_after,
        "cpu_count": int(os.cpu_count() or 1),
        "bit_identical": True,
    }


def measure_observability_overhead(
    benchmark: str = DEFAULT_BENCHMARK,
    n_rows: int = 2048,
    repeats: int = 5,
    passes: int = 3,
) -> Dict[str, object]:
    """Measure what the observability subsystem costs when off, on, and profiling.

    Three regimes over the same planned-executor workload (``n_rows``
    log-likelihood rows through the ``benchmark`` tape, best of
    ``repeats`` timings of ``passes`` consecutive passes each):

    * **disabled** (``configure(metrics=False, tracing=False)``) — the
      instrumented :meth:`~repro.spn.compiled.CompiledTape.execute_batch`
      against the raw planned kernel loop
      (:func:`~repro.spn.memplan.execute_plan` on the same
      :class:`~repro.spn.memplan.MemoryPlan`).  The instrumentation adds
      one contextvar read per batch; the gate requires the ratio <= 1.02.
    * **enabled** (metrics + tracing on) — :meth:`InferenceSession.run`
      with span recording against the same call with observability off.
      Spans amortize per *pass*, never per kernel; gate <= 1.10.
    * **profiled** (a per-call :class:`~repro.observability.TapeProfiler`)
      — explicitly exempt from the overhead gates, but its per-kernel
      elapsed must explain >= 90% of the profiled pass wall time
      (``profile_coverage``), or the "top kernels" table is fiction.

    Every regime's result is asserted bit-identical to the raw loop's
    before any time is reported.  Returns a flat dict for the
    ``observability`` section of ``BENCH_sweeps.json``.
    """
    import numpy as np

    from .. import observability
    from ..api.queries import LogLikelihood
    from ..api.session import InferenceSession
    from ..observability import TapeProfiler, observability_scope
    from ..spn.generate import random_evidence
    from ..spn.memplan import execute_plan
    from ..suite.registry import benchmark_n_vars, benchmark_tape

    tape = benchmark_tape(benchmark)
    plan = tape.memory_plan()
    evidence = random_evidence(
        benchmark_n_vars(benchmark),
        observed_fraction=0.5,
        seed=31,
        n_samples=n_rows,
    )
    session = InferenceSession(benchmark)
    query = LogLikelihood(evidence=evidence)

    def run_raw():
        with observability_scope(metrics=False, tracing=False):
            return execute_plan(plan, evidence, log_domain=True)

    def run_disabled():
        with observability_scope(metrics=False, tracing=False):
            return tape.execute_batch(evidence, log_domain=True, execution="planned")

    def run_session_off():
        with observability_scope(metrics=False, tracing=False):
            return session.run(query)

    def run_session_on():
        with observability_scope(metrics=True, tracing=True):
            return session.run(query)

    profiler = TapeProfiler()

    def run_profiled():
        with profiler:
            return tape.execute_batch(evidence, log_domain=True, execution="planned")

    regimes = {
        "raw": run_raw,
        "disabled": run_disabled,
        "session_off": run_session_off,
        "session_on": run_session_on,
        "profiled": run_profiled,
    }
    outputs = {label: np.asarray(fn()) for label, fn in regimes.items()}  # warm
    # Interleave the regimes within each repeat (and keep the best-of-N
    # minimum per regime): clock-frequency or cache drift over the
    # measurement then shifts every regime together instead of biasing
    # whichever one happened to run last, which is what the overhead
    # *ratios* are sensitive to.
    timings = {label: float("inf") for label in regimes}
    for _ in range(max(1, repeats)):
        for label, fn in regimes.items():
            start = time.perf_counter()
            for _ in range(max(1, passes)):
                fn()
            timings[label] = min(
                timings[label], (time.perf_counter() - start) / max(1, passes)
            )
    t_raw = timings["raw"]
    t_disabled = timings["disabled"]
    t_session_off = timings["session_off"]
    t_session_on = timings["session_on"]
    t_profiled = timings["profiled"]

    reference = outputs["raw"]
    for label, out in outputs.items():
        if not np.array_equal(out, reference):
            raise AssertionError(
                f"{label} execution is not bit-identical to the raw kernel loop"
            )

    table = profiler.table(top=3)
    return {
        "benchmark": benchmark,
        "n_rows": int(n_rows),
        "n_kernels": len(tape.kernels),
        "t_raw_loop_s": t_raw,
        "t_disabled_s": t_disabled,
        "t_session_off_s": t_session_off,
        "t_session_on_s": t_session_on,
        "t_profiled_s": t_profiled,
        "overhead_disabled": t_disabled / t_raw,
        "overhead_enabled": t_session_on / t_session_off,
        "overhead_profiled": t_profiled / t_raw,
        "profile_coverage": profiler.coverage(),
        "profile_total_gb": profiler.total_bytes / 1e9,
        "top_kernels": [
            {
                "kernel": row["kernel"],
                "op": row["op"],
                "width": int(row["width"]),
                "share": row["share"],
                "gb_per_s": row["gb_per_s"],
            }
            for row in table
        ],
        "bit_identical": True,
        "cpu_count": int(os.cpu_count() or 1),
    }


# --------------------------------------------------------------------------- #
# BENCH_sweeps.json emission
# --------------------------------------------------------------------------- #
def measure_static_analysis() -> Dict[str, object]:
    """Measure the static verification layer across the nine suite profiles.

    Four facts for the ``static_analysis`` section of ``BENCH_sweeps.json``:

    * **verify cost vs compile cost** — for every profile, the structural
      proof (tape verifier + fused-plan verifier) timed against a fresh
      linearize → compile → plan of the same network; the benchmark gates
      the total ratio at <= 5%, the budget that makes always-on
      load/publish gates free in practice.  Abstract interpretation is
      timed separately (``analyze_s``): it is an advisory analysis, not
      part of the pass/fail gate the lifecycle wires in everywhere;
    * **mutation detection** — every applicable mutator of the seeded
      corpus (:mod:`repro.statics.mutate`) applied to every profile; the
      gate requires 100% detection;
    * **false positives** — every unmutated profile must verify clean
      (counted here, gated at zero);
    * **lint** — finding count over the installed ``repro`` package source
      (gated at zero) plus what the abstract interpreter proved
      (normalization for all nine; which profiles carry linear-domain
      underflow risk).
    """
    import time as _time
    from pathlib import Path as _Path

    import repro as _repro
    from ..spn.compiled import compile_tape
    from ..spn.linearize import linearize
    from ..statics.absint import analyze_tape
    from ..statics.lint import lint_paths
    from ..statics.mutate import MUTATORS, mutate
    from ..statics.verifier import VerificationError, verify_compiled
    from ..suite.registry import benchmark_names, build_benchmark

    compile_s = 0.0
    verify_s = 0.0
    analyze_s = 0.0
    false_positives = 0
    proved_normalized = 0
    underflow_flagged = []
    applied = 0
    detected = 0
    for name in benchmark_names():
        spn = build_benchmark(name)
        started = _time.perf_counter()
        tape = compile_tape(linearize(spn))
        plan = tape.memory_plan()
        compile_s += _time.perf_counter() - started

        started = _time.perf_counter()
        try:
            verify_compiled(tape, plan)
        except VerificationError:
            false_positives += 1
        verify_s += _time.perf_counter() - started

        started = _time.perf_counter()
        analysis = analyze_tape(tape)
        analyze_s += _time.perf_counter() - started
        if analysis.proves_log_nonpositive:
            proved_normalized += 1
        if analysis.underflow_risk:
            underflow_flagged.append(name)

        for seed, mutator in enumerate(MUTATORS):
            result = mutate(mutator, tape, plan, seed=seed + 1)
            if result is None:
                continue
            applied += 1
            try:
                verify_compiled(*result)
            except VerificationError:
                detected += 1

    lint_findings = len(lint_paths([_Path(_repro.__file__).parent]))
    return {
        "profiles": len(benchmark_names()),
        "compile_s": compile_s,
        "verify_s": verify_s,
        "analyze_s": analyze_s,
        "verify_vs_compile": verify_s / compile_s if compile_s else float("inf"),
        "mutators": len(MUTATORS),
        "mutations_applied": applied,
        "mutations_detected": detected,
        "detection_rate": detected / applied if applied else 0.0,
        "false_positives": false_positives,
        "proved_normalized": proved_normalized,
        "underflow_flagged": sorted(underflow_flagged),
        "lint_findings": lint_findings,
    }


def _read_bench_json(path: Path) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        return {}
    return existing if isinstance(existing, dict) else {}


def _round_floats(value: object) -> object:
    """Round every float to 6 significant digits, recursively.

    Applied to the whole ``BENCH_sweeps.json`` payload on every write:
    sub-microsecond timing noise in the 15th digit otherwise rewrites all
    ~40 lines of the artifact on every PR without carrying information
    (bools pass through — they are ints to ``isinstance``; non-finite
    floats have no significant digits to round).
    """
    if isinstance(value, bool) or not isinstance(value, float):
        if isinstance(value, dict):
            return {k: _round_floats(v) for k, v in value.items()}
        if isinstance(value, list):
            return [_round_floats(v) for v in value]
        return value
    if value != value or value in (float("inf"), float("-inf")):
        return value
    return float(f"{value:.6g}")


def update_bench_json(path: Path, **sections: object) -> Dict[str, object]:
    """Merge ``sections`` into the artifact at ``path``, preserving other keys.

    Several benchmark writers contribute to the same ``BENCH_sweeps.json``
    (the sweep grid, the engine speedup, the simulator speedup); merging
    keeps the artifact whole no matter which writer runs last.  The file is
    emitted deterministically — sections and keys sorted, floats rounded to
    6 significant digits — so re-running a benchmark only rewrites the
    lines whose measurements genuinely moved.
    """
    payload = _read_bench_json(Path(path))
    payload.setdefault("schema", "BENCH_sweeps/v1")
    payload.update(sections)
    payload = _round_floats(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str, sort_keys=True)
        handle.write("\n")
    return payload


def write_bench_json(
    results: Sequence[SweepResult],
    path: Path = Path("BENCH_sweeps.json"),
    benchmark: str = DEFAULT_BENCHMARK,
    engine_speedup: Optional[Mapping[str, float]] = None,
    simulator_speedup: Optional[Mapping[str, float]] = None,
    merge_sweeps: bool = False,
) -> Dict[str, object]:
    """Write the consolidated sweep artifact and return its payload.

    Top-level keys already present in the file but not produced by this call
    (for example a ``simulator_speedup`` section written by
    ``benchmarks/test_bench_simulator.py``) are preserved.  With
    ``merge_sweeps=True`` the existing ``sweeps`` entries are kept too,
    except those for the points measured now (matched by kind, benchmark,
    label and platform) — so a platform-filtered run updates its rows
    without dropping the other platforms' rows from the artifact.
    """
    sweeps: List[Dict[str, object]] = [
        {
            **result.point.as_dict(),
            **result.values,
            "cached": result.cached,
            "elapsed_s": round(result.elapsed, 6),
        }
        for result in results
    ]
    if merge_sweeps:
        def entry_key(entry: Mapping[str, object]) -> tuple:
            return tuple(entry.get(k) for k in ("kind", "benchmark", "label", "platform"))

        existing = _read_bench_json(Path(path)).get("sweeps")
        if isinstance(existing, list):
            fresh = {entry_key(e) for e in sweeps}
            sweeps = [
                e for e in existing
                if isinstance(e, dict) and entry_key(e) not in fresh
            ] + sweeps
    sections: Dict[str, object] = {
        "benchmark": benchmark,
        "sweeps": sweeps,
    }
    if engine_speedup is not None:
        sections["engine_speedup"] = dict(engine_speedup)
    if simulator_speedup is not None:
        sections["simulator_speedup"] = dict(simulator_speedup)
    return update_bench_json(Path(path), **sections)


# --------------------------------------------------------------------------- #
# Named sweeps (thin shapers over the runner, used by tests and benchmarks)
# --------------------------------------------------------------------------- #
def _values_by_label(results: Iterable[SweepResult]) -> Dict[str, float]:
    return {r.point.label: r.ops_per_cycle for r in results}


def _allocation_by_label(results: Iterable[SweepResult]) -> Dict[str, Dict[str, float]]:
    """Decode ``"alloc/config"`` labels into a nested ``{alloc: {config: value}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for result in results:
        alloc, config = result.point.label.split("/", 1)
        out.setdefault(alloc, {})[config] = result.ops_per_cycle
    return out


def tree_arrangement_sweep(
    benchmark: str = DEFAULT_BENCHMARK,
    arrangements: Iterable[Tuple[str, int, int]] = TREE_ARRANGEMENTS,
    parallel: bool = False,
    cache_dir: Optional[Path] = None,
) -> Dict[str, float]:
    """Throughput for several PE-tree arrangements with the same register file."""
    results = run_sweep(
        tree_arrangement_points(benchmark, arrangements),
        parallel=parallel,
        cache_dir=cache_dir,
    )
    return _values_by_label(results)


def allocation_ablation(
    benchmark: str = DEFAULT_BENCHMARK,
    parallel: bool = False,
    cache_dir: Optional[Path] = None,
) -> Dict[str, Dict[str, float]]:
    """Conflict-aware vs naive register-bank allocation for Ptree and Pvect."""
    results = run_sweep(
        allocation_points(benchmark),
        parallel=parallel,
        cache_dir=cache_dir,
    )
    return _allocation_by_label(results)


def packing_ablation(
    benchmark: str = DEFAULT_BENCHMARK,
    parallel: bool = False,
    cache_dir: Optional[Path] = None,
) -> Dict[str, float]:
    """Effect of packing several cones per tree per cycle (Ptree only)."""
    results = run_sweep(
        packing_points(benchmark),
        parallel=parallel,
        cache_dir=cache_dir,
    )
    return _values_by_label(results)


def gpu_bank_allocation_ablation(
    benchmark: str = DEFAULT_BENCHMARK,
    parallel: bool = False,
    cache_dir: Optional[Path] = None,
) -> Dict[str, float]:
    """GPU shared-memory bank allocation: graph coloring vs interleaved layout."""
    results = run_sweep(
        gpu_bank_points(benchmark),
        parallel=parallel,
        cache_dir=cache_dir,
    )
    return _values_by_label(results)


# --------------------------------------------------------------------------- #
# Rendering and CLI
# --------------------------------------------------------------------------- #
def main(
    benchmark: str = DEFAULT_BENCHMARK,
    parallel: bool = True,
    cache_dir: Optional[Path] = DEFAULT_CACHE_DIR,
) -> str:
    """Render all sweeps for one benchmark (single parallel, cached fan-out)."""
    results = run_sweep(
        all_sweep_points(benchmark),
        parallel=parallel,
        cache_dir=cache_dir,
    )
    return render_sweeps(results, benchmark)


def render_sweeps(results: Sequence[SweepResult], benchmark: str) -> str:
    """Render already-computed sweep results as the four ASCII tables."""
    by_kind: Dict[str, List[SweepResult]] = {}
    for result in results:
        by_kind.setdefault(result.point.kind, []).append(result)

    sections: List[str] = []
    sections.append(
        format_table(
            ["arrangement", "ops/cycle"],
            list(_values_by_label(by_kind.get("tree_arrangement", ())).items()),
            title=f"PE arrangement sweep ({benchmark})",
        )
    )
    allocation = _allocation_by_label(by_kind.get("allocation", ()))
    # A platform-filtered sweep may carry only one of the two configs.
    rows = [
        (label, values.get("Pvect", "-"), values.get("Ptree", "-"))
        for label, values in allocation.items()
    ]
    sections.append(
        format_table(
            ["register allocation", "Pvect", "Ptree"],
            rows,
            title=f"Register-bank allocation ablation ({benchmark})",
        )
    )
    sections.append(
        format_table(
            ["scheduler", "ops/cycle"],
            list(_values_by_label(by_kind.get("packing", ())).items()),
            title=f"Subtree packing ablation ({benchmark})",
        )
    )
    sections.append(
        format_table(
            ["GPU bank allocation", "ops/cycle"],
            list(_values_by_label(by_kind.get("gpu_banks", ())).items()),
            title=f"GPU shared-memory bank allocation ({benchmark})",
        )
    )
    return "\n\n".join(sections)


def _cli(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the design-space sweeps (parallel, cached) and "
        "optionally emit BENCH_sweeps.json."
    )
    parser.add_argument("--benchmark", default=DEFAULT_BENCHMARK)
    parser.add_argument("--serial", action="store_true", help="disable the process pool")
    parser.add_argument("--workers", type=int, default=None, help="process-pool size")
    parser.add_argument("--no-cache", action="store_true", help="ignore the on-disk cache")
    parser.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE_DIR)
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="write the BENCH_sweeps.json artifact to PATH")
    parser.add_argument("--skip-speedup", action="store_true",
                        help="skip the engine and simulator speedup measurements")
    parser.add_argument("--platforms", nargs="+", default=None, metavar="NAME",
                        help="only run sweep points on these platform-registry "
                        "names (e.g. --platforms GPU Ptree)")
    args = parser.parse_args(argv)

    cache_dir = None if args.no_cache else args.cache_dir
    results = run_sweep(
        filter_points(all_sweep_points(args.benchmark), args.platforms),
        parallel=not args.serial,
        max_workers=args.workers,
        cache_dir=cache_dir,
    )
    print(render_sweeps(results, args.benchmark))
    speedup = simulator_speedup = query_speedup = tape_memory = None
    classify_speedup = lifecycle = None
    if not args.skip_speedup:
        speedup = measure_engine_speedup()
        print(
            f"\nengine speedup: vectorized tape is "
            f"{speedup['speedup_vs_reference']:.1f}x the reference executor "
            f"({speedup['n_operations']} ops, {speedup['n_samples']} rows)"
        )
        simulator_speedup = measure_simulator_speedup()
        print(
            f"simulator speedup: fast mode is "
            f"{simulator_speedup['speedup_fast_vs_strict']:.1f}x strict mode "
            f"({simulator_speedup['n_instructions']} instructions)"
        )
        query_speedup = measure_query_speedup()
        print(
            f"query-API speedup: one batched Conditional "
            f"({query_speedup['tape_passes_per_batch']} tape passes, "
            f"{query_speedup['n_rows']} rows) is "
            f"{query_speedup['speedup_batched_vs_scalar']:.1f}x the per-row "
            f"scalar path"
        )
        classify_speedup = measure_classify_speedup()
        print(
            f"analysis-query speedup: one batched Classify "
            f"({classify_speedup['tape_passes_per_batch']} tape passes, "
            f"{classify_speedup['n_rows']} rows x "
            f"{classify_speedup['n_states']} states) is "
            f"{classify_speedup['speedup_batched_vs_loop']:.1f}x the "
            f"per-state Conditional loop"
        )
        tape_memory = measure_tape_memory()
        print(
            f"tape memory: planner shrinks the working set "
            f"{tape_memory['memory_reduction']:.1f}x "
            f"({tape_memory['n_slots']} -> {tape_memory['n_physical']} rows on "
            f"{tape_memory['benchmark']}), planned executor "
            f"{tape_memory['speedup_planned_vs_legacy']:.2f}x legacy"
        )
        lifecycle = measure_lifecycle()
        print(
            f"model lifecycle: AOT cold start is "
            f"{lifecycle['cold_start_speedup']:.1f}x recompile-from-source "
            f"({lifecycle['t_cold_start_s'] * 1e3:.0f} ms vs "
            f"{lifecycle['t_recompile_s'] * 1e3:.0f} ms), hot swap lost "
            f"{lifecycle['requests_lost']}/{lifecycle['n_requests']} requests"
        )
    if args.json is not None:
        write_bench_json(
            results,
            args.json,
            args.benchmark,
            engine_speedup=speedup,
            simulator_speedup=simulator_speedup,
            # A platform-filtered run must not drop the other platforms'
            # rows from an already-merged artifact.
            merge_sweeps=args.platforms is not None,
        )
        if query_speedup is not None:
            update_bench_json(args.json, query_api=query_speedup)
        if classify_speedup is not None:
            update_bench_json(args.json, analysis_queries=classify_speedup)
        if tape_memory is not None:
            update_bench_json(args.json, tape_memory=tape_memory)
        if lifecycle is not None:
            update_bench_json(args.json, model_lifecycle=lifecycle)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(_cli())
