"""Ablation and design-space sweeps beyond the paper's two configurations.

The paper evaluates exactly two design points (``Ptree`` and ``Pvect``).
These sweeps explore the surrounding design space and the compiler features
DESIGN.md calls out, so that the contribution of each architectural and
compiler ingredient can be quantified:

* number of PE trees and tree depth (at a fixed 32-bank register file);
* conflict-aware vs naive register-bank allocation;
* subtree packing (several cones per tree per cycle) on vs off;
* GPU shared-memory bank allocation: graph coloring vs plain interleaving.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.report import format_table
from ..baselines.gpu import GpuConfig, simulate_gpu
from ..compiler.scheduler import ScheduleOptions
from ..processor.config import ProcessorConfig
from ..spn.linearize import OperationList
from ..suite.registry import benchmark_operation_list
from .platforms import run_processor

__all__ = [
    "tree_arrangement_sweep",
    "allocation_ablation",
    "packing_ablation",
    "gpu_bank_allocation_ablation",
    "main",
]

#: Benchmark used by default for the sweeps (mid-sized, Lowd-Davis suite).
DEFAULT_BENCHMARK = "KDDCup2k"

#: (name, n_trees, n_levels) points sharing the 32-bank register file.
TREE_ARRANGEMENTS: Tuple[Tuple[str, int, int], ...] = (
    ("16 trees x 1 level (Pvect)", 16, 1),
    ("8 trees x 2 levels", 8, 2),
    ("4 trees x 3 levels", 4, 3),
    ("2 trees x 4 levels (Ptree)", 2, 4),
)


def _ops(benchmark: str) -> OperationList:
    return benchmark_operation_list(benchmark)


def tree_arrangement_sweep(
    benchmark: str = DEFAULT_BENCHMARK,
    arrangements: Iterable[Tuple[str, int, int]] = TREE_ARRANGEMENTS,
) -> Dict[str, float]:
    """Throughput for several PE-tree arrangements with the same register file."""
    ops = _ops(benchmark)
    results: Dict[str, float] = {}
    for name, n_trees, n_levels in arrangements:
        config = ProcessorConfig(
            name=name, n_trees=n_trees, n_levels=n_levels, n_banks=32, bank_depth=64
        )
        results[name] = run_processor(ops, config, benchmark).ops_per_cycle
    return results


def allocation_ablation(benchmark: str = DEFAULT_BENCHMARK) -> Dict[str, Dict[str, float]]:
    """Conflict-aware vs naive register-bank allocation for Ptree and Pvect."""
    from ..processor.config import ptree_config, pvect_config

    ops = _ops(benchmark)
    out: Dict[str, Dict[str, float]] = {}
    for label, options in (
        ("conflict-aware", ScheduleOptions(conflict_aware_allocation=True)),
        ("naive", ScheduleOptions(conflict_aware_allocation=False)),
    ):
        out[label] = {
            config.name: run_processor(ops, config, benchmark, options).ops_per_cycle
            for config in (pvect_config(), ptree_config())
        }
    return out


def packing_ablation(benchmark: str = DEFAULT_BENCHMARK) -> Dict[str, float]:
    """Effect of packing several cones per tree per cycle (Ptree only)."""
    from ..processor.config import ptree_config

    ops = _ops(benchmark)
    return {
        "packing on": run_processor(
            ops, ptree_config(), benchmark, ScheduleOptions(pack_multiple_cones=True)
        ).ops_per_cycle,
        "packing off": run_processor(
            ops, ptree_config(), benchmark, ScheduleOptions(pack_multiple_cones=False)
        ).ops_per_cycle,
    }


def gpu_bank_allocation_ablation(benchmark: str = DEFAULT_BENCHMARK) -> Dict[str, float]:
    """GPU shared-memory bank allocation: graph coloring vs interleaved layout."""
    ops = _ops(benchmark)
    return {
        "graph coloring": simulate_gpu(ops, GpuConfig(bank_allocation="coloring")).ops_per_cycle,
        "interleaved": simulate_gpu(ops, GpuConfig(bank_allocation="interleaved")).ops_per_cycle,
    }


def main(benchmark: str = DEFAULT_BENCHMARK) -> str:
    """Render all sweeps for one benchmark."""
    sections: List[str] = []
    sections.append(
        format_table(
            ["arrangement", "ops/cycle"],
            list(tree_arrangement_sweep(benchmark).items()),
            title=f"PE arrangement sweep ({benchmark})",
        )
    )
    allocation = allocation_ablation(benchmark)
    rows = [
        (label, values["Pvect"], values["Ptree"])
        for label, values in allocation.items()
    ]
    sections.append(
        format_table(
            ["register allocation", "Pvect", "Ptree"],
            rows,
            title=f"Register-bank allocation ablation ({benchmark})",
        )
    )
    sections.append(
        format_table(
            ["scheduler", "ops/cycle"],
            list(packing_ablation(benchmark).items()),
            title=f"Subtree packing ablation ({benchmark})",
        )
    )
    sections.append(
        format_table(
            ["GPU bank allocation", "ops/cycle"],
            list(gpu_bank_allocation_ablation(benchmark).items()),
            title=f"GPU shared-memory bank allocation ({benchmark})",
        )
    )
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
