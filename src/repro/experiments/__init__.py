"""Experiment drivers: one module per table/figure of the paper plus sweeps.

* :mod:`repro.experiments.fig2c` — CPU vs GPU thread-count sweep (Fig. 2c);
* :mod:`repro.experiments.table1` — platform resource table (Table I);
* :mod:`repro.experiments.fig4` — suite-wide throughput comparison (Fig. 4);
* :mod:`repro.experiments.claims` — the headline claims of Sec. V;
* :mod:`repro.experiments.sweeps` — ablations and design-space sweeps.

Each module exposes ``run()`` returning structured data and ``main()``
returning the rendered text, and can be executed with
``python -m repro.experiments.<name>``.
"""

from . import claims, fig2c, fig4, platforms, sweeps, table1
from .platforms import (
    DEFAULT_PLATFORMS,
    PLATFORM_CPU,
    PLATFORM_GPU,
    PLATFORM_PTREE,
    PLATFORM_PVECT,
    run_benchmark,
    run_platform,
    run_suite,
)

__all__ = [
    "claims",
    "fig2c",
    "fig4",
    "platforms",
    "sweeps",
    "table1",
    "DEFAULT_PLATFORMS",
    "PLATFORM_CPU",
    "PLATFORM_GPU",
    "PLATFORM_PTREE",
    "PLATFORM_PVECT",
    "run_benchmark",
    "run_platform",
    "run_suite",
]
