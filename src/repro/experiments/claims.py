"""Headline claims of the paper (Sec. V text), derived from the Fig. 4 data.

The paper summarizes its evaluation with a handful of scalar claims:

* CPU peak throughput is about 0.55 operations/cycle;
* GPU peak throughput is about 0.95 operations/cycle;
* ``Ptree`` reaches a peak of 11.6 operations/cycle;
* ``Ptree`` is at least 12x faster than both the CPU and the GPU;
* ``Ptree`` is about 2x faster than ``Pvect``.

This module recomputes each claim from the reproduction's own Fig. 4 data so
that the claims benchmark (``benchmarks/test_bench_claims.py``) can report
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..analysis.metrics import PlatformResult, geometric_mean, peak, speedup
from ..analysis.report import format_table
from .platforms import PLATFORM_CPU, PLATFORM_GPU, PLATFORM_PTREE, PLATFORM_PVECT
from . import fig4

__all__ = ["Claim", "derive_claims", "main"]


@dataclass(frozen=True)
class Claim:
    """One headline claim with the paper's value and the measured value."""

    name: str
    paper_value: float
    measured_value: float

    @property
    def ratio(self) -> float:
        return self.measured_value / self.paper_value if self.paper_value else float("nan")


def derive_claims(
    results: Optional[Dict[str, Dict[str, PlatformResult]]] = None,
    names: Optional[Iterable[str]] = None,
) -> List[Claim]:
    """Compute the five headline claims from Fig. 4 data (running it if needed)."""
    if results is None:
        results = fig4.run(names)
    cpu = [r[PLATFORM_CPU].ops_per_cycle for r in results.values()]
    gpu = [r[PLATFORM_GPU].ops_per_cycle for r in results.values()]
    pvect = [r[PLATFORM_PVECT].ops_per_cycle for r in results.values()]
    ptree = [r[PLATFORM_PTREE].ops_per_cycle for r in results.values()]

    speedup_vs_cpu = geometric_mean(
        [speedup(t, c) for t, c in zip(ptree, cpu)]
    )
    speedup_vs_gpu = geometric_mean(
        [speedup(t, g) for t, g in zip(ptree, gpu)]
    )
    speedup_vs_pvect = geometric_mean(
        [speedup(t, v) for t, v in zip(ptree, pvect)]
    )
    return [
        Claim("CPU peak ops/cycle", 0.55, peak(cpu)),
        Claim("GPU peak ops/cycle", 0.95, peak(gpu)),
        Claim("Ptree peak ops/cycle", 11.6, peak(ptree)),
        Claim("Ptree speedup over CPU (geomean)", 12.0, speedup_vs_cpu),
        Claim("Ptree speedup over GPU (geomean)", 12.0, speedup_vs_gpu),
        Claim("Ptree speedup over Pvect (geomean)", 2.0, speedup_vs_pvect),
    ]


def main(names: Optional[Iterable[str]] = None) -> str:
    """Render the paper-vs-measured claims table."""
    claims = derive_claims(names=names)
    rows = [(c.name, c.paper_value, c.measured_value, c.ratio) for c in claims]
    return format_table(
        ["claim", "paper", "measured", "measured/paper"],
        rows,
        title="Headline claims (Sec. V) - paper vs this reproduction",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
