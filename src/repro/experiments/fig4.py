"""Figure 4: throughput of CPU, GPU, Pvect and Ptree on the nine benchmarks.

For every benchmark of the suite the driver runs the CPU model, the GPU model
(256 threads) and the custom processor in both configurations (compiled with
the full compiler and measured on the cycle-accurate simulator in strict
mode), and reports effective operations/cycle — the exact quantity plotted in
Fig. 4 of the paper.  All four platforms are resolved by name through the
engine registry (:mod:`repro.platforms`) via
:func:`repro.experiments.platforms.run_suite`.

A second, optional pass repeats the two processor configurations with the
naive first-fit register-bank allocation (``conflict_aware_allocation=False``)
as an ablation of the compiler's conflict-minimizing allocation; the two
settings bracket the paper's reported numbers (see ``docs/architecture.md``
and the guard rails in ``benchmarks/test_bench_fig4.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..analysis.metrics import PlatformResult
from ..analysis.report import format_table
from ..compiler.scheduler import ScheduleOptions
from ..suite.registry import benchmark_names
from .platforms import DEFAULT_PLATFORMS, PLATFORM_PTREE, PLATFORM_PVECT, run_suite

__all__ = ["run", "main"]


def run(
    names: Optional[Iterable[str]] = None,
    include_naive_allocation: bool = False,
) -> Dict[str, Dict[str, PlatformResult]]:
    """Run the Fig. 4 grid and return ``{benchmark: {platform: result}}``.

    With ``include_naive_allocation`` the result dictionaries additionally
    contain ``"Pvect (naive alloc)"`` and ``"Ptree (naive alloc)"`` entries.
    """
    results = run_suite(names, DEFAULT_PLATFORMS)
    if include_naive_allocation:
        naive = ScheduleOptions(conflict_aware_allocation=False)
        naive_results = run_suite(names, (PLATFORM_PVECT, PLATFORM_PTREE), options=naive)
        for benchmark, by_platform in naive_results.items():
            for platform, result in by_platform.items():
                results[benchmark][f"{platform} (naive alloc)"] = result
    return results


def main(
    names: Optional[Iterable[str]] = None,
    include_naive_allocation: bool = True,
) -> str:
    """Render the Fig. 4 table (and the allocation ablation) as text."""
    names = list(names) if names is not None else benchmark_names()
    results = run(names, include_naive_allocation=include_naive_allocation)
    platforms: List[str] = list(next(iter(results.values())).keys())
    rows = []
    for benchmark in names:
        row: List[object] = [benchmark]
        for platform in platforms:
            row.append(results[benchmark][platform].ops_per_cycle)
        rows.append(row)
    table = format_table(
        ["benchmark"] + platforms,
        rows,
        title="Fig. 4 reproduction - throughput in operations/cycle",
    )
    peak_ptree = max(r[PLATFORM_PTREE].ops_per_cycle for r in results.values())
    footer = f"Ptree peak: {peak_ptree:.2f} ops/cycle (paper reports 11.6)"
    return table + "\n\n" + footer


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(main())
