"""Vectorized fast path of the cycle-accurate simulator.

The interpreted simulator (:mod:`repro.processor.simulator`) walks one VLIW
instruction per cycle through Python dictionaries — register file, pending
writes, datapath outputs — which is exactly the right shape for strict-mode
verification but pays that per-slot cost on *every* run, even though a
:class:`~repro.processor.isa.Program` has no data-dependent control flow.

This module exploits that determinism: :func:`precompile_program` executes
the program once *symbolically* — value identities instead of floats — doing
all the per-cycle work (commit scheduling, crossbar and write-port hazard
checks, memory transactions, cycle and utilization accounting) a single time
at compile time, and records the pure dataflow as index/op tapes:

* an input gather (which operation-list slot feeds each initial value);
* one :class:`TapeKernel` per ``(dataflow level, opcode)`` group, holding
  NumPy gather index vectors for both operands and a contiguous output
  range, exactly like the levelized SPN tape of :mod:`repro.spn.compiled`;
* the statically known :class:`SimulationResult` statistics (cycles, reads,
  writes, loads, stores).

Crucially, the symbolic pass is not a re-implementation of the machine: it
runs the *interpreter's own* step methods over the *real*
:class:`~repro.processor.components.RegisterFile` and
:class:`~repro.processor.components.DataMemory` (which shuttle value ids as
happily as floats), swapping in only a datapath whose ADD/MUL emit tape
entries instead of computing.  Every structural rule therefore has exactly
one definition, and fast mode raises the same exception types with the same
messages as strict mode — just at precompile time.  Only input-dependent
checks (data-memory image slot range) remain at run time.

Running the program for a new input vector then costs one NumPy gather per
tape kernel instead of per-slot Python dict work.  Because the tapes apply
the *same* IEEE-754 double operations to the *same* operand pairings as the
interpreted loop (only batched), fast mode reproduces strict-mode values and
cycle counts exactly — bit for bit — which the equivalence tests and
:func:`repro.processor.simulator.cross_check_modes` assert.  Strict-mode
per-*value* verification is intentionally not performed here — that is what
``mode="strict"`` is for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .components import DataMemory, PEValue, RegisterFile, TreeDatapath
from .config import ProcessorConfig
from .errors import StructuralHazardError, UninitializedReadError
from .isa import OP_ADD, OP_MUL, OP_PASS_A, OP_PASS_B, Program

__all__ = [
    "TapeKernel",
    "FastProgram",
    "precompile_program",
    "fast_program",
    "clear_cache",
]


@dataclass(frozen=True)
class TapeKernel:
    """One fused array operation: ``values[start:end] = op(values[a], values[b])``."""

    opcode: str
    start: int
    end: int
    a_index: np.ndarray
    b_index: np.ndarray


@dataclass
class FastProgram:
    """A precompiled program: input gather, op tapes and static statistics."""

    #: Operation-list slot feeding each of the first ``n_inputs`` value entries.
    input_slots: np.ndarray
    #: Data-memory image slots in initialization order (for error reporting).
    image_slots: Tuple[int, ...]
    #: Smallest / largest slot referenced by the image (0 / -1 when empty);
    #: the per-run input validation is two comparisons against them.
    min_image_slot: int
    max_image_slot: int
    kernels: Tuple[TapeKernel, ...]
    n_values: int
    #: Position of the result in the value array, or ``None`` when the root is
    #: an input slot (``result_slot`` indexes the input vector directly).
    result_position: Optional[int]
    result_slot: int
    # Statically known statistics (identical to one interpreted run).
    cycles: int
    n_reads: int
    n_writes: int
    n_loads: int
    n_stores: int

    @property
    def n_inputs(self) -> int:
        return len(self.input_slots)

    def execute(self, input_values: np.ndarray) -> float:
        """Run the tapes for one input vector and return the root value."""
        input_values = np.asarray(input_values, dtype=np.float64)
        if self.min_image_slot < 0 or self.max_image_slot >= len(input_values):
            # Report the first offending slot in image order, exactly like
            # the interpreter's data-memory initialization (a negative slot
            # must raise here too, never gather via NumPy wrap-around).
            for slot in self.image_slots:
                if not 0 <= slot < len(input_values):
                    raise StructuralHazardError(
                        f"data-memory image references input slot {slot}, but "
                        f"only {len(input_values)} input values were provided"
                    )
        values = np.empty(self.n_values, dtype=np.float64)
        if self.n_inputs:
            values[: self.n_inputs] = input_values[self.input_slots]
        for kernel in self.kernels:
            ufunc = np.add if kernel.opcode == OP_ADD else np.multiply
            values[kernel.start : kernel.end] = ufunc(
                values[kernel.a_index], values[kernel.b_index]
            )
        if self.result_position is None:
            return float(input_values[self.result_slot])
        return float(values[self.result_position])


class _SymbolicDatapath(TreeDatapath):
    """The PE-tree datapath over value ids: ADD/MUL emit tape entries.

    Operand routing, level ordering and error precedence are inherited from
    :class:`~repro.processor.components.TreeDatapath`; only ``_apply`` is
    replaced, mirroring the original's check order exactly (pass-throughs
    first, then missing operands, then the opcode) so both modes raise the
    same exception for the same malformed instruction.
    """

    def __init__(self, config: ProcessorConfig, emit_op) -> None:
        super().__init__(config)
        self._emit_op = emit_op

    def _apply(self, opcode, a, b, pe):  # overrides the parent staticmethod
        if opcode == OP_PASS_A:
            if a is None:
                raise UninitializedReadError(f"PE {pe}: pass_a with no A operand")
            return PEValue(a.value, a.slot)
        if opcode == OP_PASS_B:
            if b is None:
                raise UninitializedReadError(f"PE {pe}: pass_b with no B operand")
            return PEValue(b.value, b.slot)
        if a is None or b is None:
            raise UninitializedReadError(f"PE {pe}: {opcode} with a missing operand")
        if opcode in (OP_ADD, OP_MUL):
            return PEValue(self._emit_op(opcode, a.value, b.value), None)
        raise StructuralHazardError(f"PE {pe}: unknown opcode {opcode!r}")


def precompile_program(program: Program, config: ProcessorConfig) -> FastProgram:
    """Symbolically execute ``program`` once and compile the value dataflow."""
    # Imported here: simulator.py imports this module at load time.
    from .simulator import Simulator

    # A non-strict interpreter instance, used purely for its per-step methods
    # (reads, write-backs, memory transactions) — the single definition of
    # the machine's structural rules.
    interpreter = Simulator(config, strict=False, mode="strict")
    regfile = RegisterFile(config)
    dmem = DataMemory(config)

    # Input entries: one value-array position per distinct operation-list slot
    # referenced by the data-memory image, in first-appearance order.  (The
    # slot-range check against the input vector happens per run, in execute().)
    entry_of_slot: Dict[int, int] = {}
    image_slots: List[int] = []
    for row_index, row in enumerate(program.dmem_image):
        lane_ids: List[Optional[int]] = []
        for slot in row:
            if slot is None:
                lane_ids.append(None)
            else:
                image_slots.append(slot)
                if slot not in entry_of_slot:
                    entry_of_slot[slot] = len(entry_of_slot)
                lane_ids.append(entry_of_slot[slot])
        dmem.write_row(row_index, lane_ids)
    n_inputs = len(entry_of_slot)

    # Arithmetic entries: (opcode, operand ids), appended in issue order.
    ops: List[Tuple[str, int, int]] = []

    def emit_op(opcode: str, a: int, b: int) -> int:
        ops.append((opcode, a, b))
        return n_inputs + len(ops) - 1

    datapath = _SymbolicDatapath(config, emit_op)
    cycles, n_reads, n_writes, n_loads, n_stores = interpreter.execute_cycles(
        program, regfile, dmem, datapath, None
    )

    if program.result_location is None:
        result_id: Optional[int] = None
    else:
        bank, reg = program.result_location
        result_id, _ = regfile.read(bank, reg)
        if result_id is None:
            raise UninitializedReadError(
                f"program finished but the result register (bank {bank}, reg {reg}) "
                "was never written"
            )

    # Levelize the dataflow and give every (level, opcode) group a contiguous
    # output range, so each group executes as one fused gather + ufunc.
    n_values = n_inputs + len(ops)
    level = [0] * n_values
    groups: Dict[Tuple[int, str], List[int]] = {}
    for k, (opcode, a, b) in enumerate(ops):
        entry = n_inputs + k
        level[entry] = max(level[a], level[b]) + 1
        groups.setdefault((level[entry], opcode), []).append(entry)

    position = list(range(n_inputs)) + [-1] * len(ops)
    next_position = n_inputs
    ordered_groups: List[Tuple[str, List[int], int]] = []
    for (_, opcode), entries in sorted(groups.items()):
        ordered_groups.append((opcode, entries, next_position))
        for entry in entries:
            position[entry] = next_position
            next_position += 1

    kernels = []
    for opcode, entries, start in ordered_groups:
        a_index = np.fromiter(
            (position[ops[e - n_inputs][1]] for e in entries), dtype=np.intp
        )
        b_index = np.fromiter(
            (position[ops[e - n_inputs][2]] for e in entries), dtype=np.intp
        )
        kernels.append(
            TapeKernel(
                opcode=opcode,
                start=start,
                end=start + len(entries),
                a_index=a_index,
                b_index=b_index,
            )
        )

    input_slots = np.empty(n_inputs, dtype=np.intp)
    for slot, entry in entry_of_slot.items():
        input_slots[entry] = slot

    return FastProgram(
        input_slots=input_slots,
        image_slots=tuple(image_slots),
        min_image_slot=min(image_slots, default=0),
        max_image_slot=max(image_slots, default=-1),
        kernels=tuple(kernels),
        n_values=n_values,
        result_position=None if result_id is None else position[result_id],
        result_slot=program.result_slot,
        cycles=cycles,
        n_reads=n_reads,
        n_writes=n_writes,
        n_loads=n_loads,
        n_stores=n_stores,
    )


# --------------------------------------------------------------------------- #
# Content-keyed precompilation cache
# --------------------------------------------------------------------------- #
#: Precompiled tapes keyed by (program content, config).  Keying on *content*
#: (not object identity) makes staleness impossible: any mutation of the
#: instruction stream, data-memory image or result metadata produces a new
#: key.  The cache is a small LRU so long-running sweeps stay bounded.
#:
#: Building the content key is itself O(program), so hot callers that own
#: their program — :class:`repro.compiler.driver.CompiledKernel` — memoize
#: the returned :class:`FastProgram` and hand it back to the simulator via
#: ``precompiled=``, skipping the lookup entirely on warm runs.
_CACHE: "OrderedDict[Tuple[object, ProcessorConfig], FastProgram]" = OrderedDict()
_CACHE_MAX = 32


def _program_fingerprint(program: Program) -> Tuple[object, ...]:
    """Hashable content key of everything the fast path depends on."""
    instructions = tuple(
        (
            tuple(instruction.reads),
            tuple(sorted(instruction.pe_ops.items())),
            tuple(instruction.writes),
            instruction.mem,
        )
        for instruction in program.instructions
    )
    image = tuple(tuple(row) for row in program.dmem_image)
    return (instructions, image, program.result_location, program.result_slot)


def fast_program(program: Program, config: ProcessorConfig) -> FastProgram:
    """Return (and cache) the precompiled fast form of ``program``."""
    key = (_program_fingerprint(program), config)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        return cached
    compiled = precompile_program(program, config)
    _CACHE[key] = compiled
    while len(_CACHE) > _CACHE_MAX:
        _CACHE.popitem(last=False)
    return compiled


def clear_cache() -> None:
    """Drop every cached precompiled program (used by cold-start benchmarks)."""
    _CACHE.clear()
