"""The SPN processor: machine description, ISA, and cycle-accurate simulator."""

from .config import ProcessorConfig, ptree_config, pvect_config
from .errors import (
    CompilationError,
    ProcessorError,
    ResourceError,
    StructuralHazardError,
    UninitializedReadError,
    VerificationError,
)
from .isa import (
    OP_ADD,
    OP_MUL,
    OP_NOP,
    OP_PASS_A,
    OP_PASS_B,
    Instruction,
    MemOp,
    Program,
    ReadSpec,
    WriteSpec,
)
from .fastsim import FastProgram, fast_program, precompile_program
from .simulator import (
    MODE_FAST,
    MODE_STRICT,
    SimulationResult,
    Simulator,
    cross_check_modes,
    simulate_program,
)
from .assembler import assemble, disassemble

__all__ = [
    "assemble",
    "disassemble",
    "ProcessorConfig",
    "ptree_config",
    "pvect_config",
    "ProcessorError",
    "CompilationError",
    "ResourceError",
    "StructuralHazardError",
    "UninitializedReadError",
    "VerificationError",
    "OP_ADD",
    "OP_MUL",
    "OP_NOP",
    "OP_PASS_A",
    "OP_PASS_B",
    "Instruction",
    "MemOp",
    "Program",
    "ReadSpec",
    "WriteSpec",
    "SimulationResult",
    "Simulator",
    "simulate_program",
    "cross_check_modes",
    "MODE_FAST",
    "MODE_STRICT",
    "FastProgram",
    "fast_program",
    "precompile_program",
]
