"""The SPN processor: machine description, ISA, and cycle-accurate simulator."""

from .config import ProcessorConfig, ptree_config, pvect_config
from .errors import (
    CompilationError,
    ProcessorError,
    ResourceError,
    StructuralHazardError,
    UninitializedReadError,
    VerificationError,
)
from .isa import (
    OP_ADD,
    OP_MUL,
    OP_NOP,
    OP_PASS_A,
    OP_PASS_B,
    Instruction,
    MemOp,
    Program,
    ReadSpec,
    WriteSpec,
)
from .simulator import SimulationResult, Simulator, simulate_program
from .assembler import assemble, disassemble

__all__ = [
    "assemble",
    "disassemble",
    "ProcessorConfig",
    "ptree_config",
    "pvect_config",
    "ProcessorError",
    "CompilationError",
    "ResourceError",
    "StructuralHazardError",
    "UninitializedReadError",
    "VerificationError",
    "OP_ADD",
    "OP_MUL",
    "OP_NOP",
    "OP_PASS_A",
    "OP_PASS_B",
    "Instruction",
    "MemOp",
    "Program",
    "ReadSpec",
    "WriteSpec",
    "SimulationResult",
    "Simulator",
    "simulate_program",
]
