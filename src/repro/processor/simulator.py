"""Cycle-accurate simulator of the SPN processor.

This is the Python equivalent of the MyHDL model the paper uses for its
throughput measurements.  It offers two execution modes with identical
results (same cycle counts, same values, bit for bit):

* ``mode="strict"`` — the verifying interpreter: one VLIW instruction per
  cycle, applying the register-file commit delay of the pipelined PE trees,
  enforcing every structural constraint of the machine (crossbar read ports,
  per-level write windows, write-port conflicts, single memory transaction
  per cycle) and additionally checking, against a reference execution of the
  operation list, that every value transported through the register file is
  the one the compiler claims it is — which turns scheduling and allocation
  bugs into precise, located errors instead of silently wrong results.
* ``mode="fast"`` — the vectorized path of :mod:`repro.processor.fastsim`:
  the program is precompiled once into per-level NumPy index/op tapes (all
  structural checks and cycle accounting happen at that point), and every
  run is a handful of array gathers instead of per-slot Python dict work.

:func:`cross_check_modes` (and ``check=True`` on :func:`simulate_program`)
runs both modes and raises :class:`~repro.processor.errors.VerificationError`
unless cycle counts, outputs and utilization counters agree exactly — the
same cross-check discipline the SPN execution engines use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .components import DataMemory, PEValue, RegisterFile, TreeDatapath
from .config import ProcessorConfig
from .errors import (
    StructuralHazardError,
    UninitializedReadError,
    VerificationError,
)
from .fastsim import FastProgram, fast_program
from .isa import OP_NOP, Instruction, Program

__all__ = [
    "MODE_STRICT",
    "MODE_FAST",
    "SimulationResult",
    "Simulator",
    "simulate_program",
    "cross_check_modes",
]

#: Relative tolerance used when checking transported values in strict mode.
_RTOL = 1e-9
_ATOL = 1e-12

#: The verifying one-instruction-per-cycle interpreter.
MODE_STRICT = "strict"
#: The vectorized precompiled-tape path (no per-value verification).
MODE_FAST = "fast"


@dataclass
class SimulationResult:
    """Cycle counts, throughput and utilization statistics of one run."""

    value: float
    cycles: int
    n_instructions: int
    n_operations: int
    n_reads: int
    n_writes: int
    n_loads: int
    n_stores: int
    config: ProcessorConfig = field(repr=False, default_factory=ProcessorConfig)

    @property
    def ops_per_cycle(self) -> float:
        """Effective SPN operations per cycle (the paper's throughput metric)."""
        return self.n_operations / self.cycles if self.cycles else 0.0

    @property
    def pe_utilization(self) -> float:
        """Fraction of PE slots doing useful arithmetic."""
        total = self.cycles * self.config.n_pes
        return self.n_operations / total if total else 0.0

    @property
    def read_port_utilization(self) -> float:
        """Fraction of crossbar read opportunities actually used."""
        total = self.cycles * self.config.n_banks
        return self.n_reads / total if total else 0.0


class Simulator:
    """Executes compiled :class:`~repro.processor.isa.Program` objects.

    ``mode`` selects the execution path: :data:`MODE_STRICT` is the verifying
    interpreter, :data:`MODE_FAST` the vectorized tape of
    :mod:`repro.processor.fastsim`.  When ``mode`` is omitted it follows the
    ``strict`` flag — strict runs interpret and verify, non-strict runs take
    the fast path (which produces identical results).
    """

    def __init__(
        self,
        config: ProcessorConfig,
        strict: bool = True,
        mode: Optional[str] = None,
    ) -> None:
        if mode not in (None, MODE_STRICT, MODE_FAST):
            raise ValueError(
                f"mode must be {MODE_STRICT!r} or {MODE_FAST!r}, got {mode!r}"
            )
        self._config = config
        self._mode = mode or (MODE_STRICT if strict else MODE_FAST)
        self._strict = strict and self._mode == MODE_STRICT

    @property
    def mode(self) -> str:
        return self._mode

    # ------------------------------------------------------------------ #
    def run(
        self,
        program: Program,
        input_values: Sequence[float],
        expected_slots: Optional[np.ndarray] = None,
        precompiled: Optional[FastProgram] = None,
    ) -> SimulationResult:
        """Execute ``program`` with the given operation-list input vector.

        Parameters
        ----------
        program:
            Output of the compiler.
        input_values:
            Value of every operation-list input slot (see
            :meth:`repro.spn.linearize.OperationList.input_vector`).
        expected_slots:
            Optional reference value of *every* slot (inputs and operation
            results).  When provided and the simulator is strict, every
            annotated read and write is checked against it.  Ignored in fast
            mode, which performs no per-value verification.
        precompiled:
            Fast mode only: reuse an already-precompiled
            :class:`~repro.processor.fastsim.FastProgram` for ``program``
            (the caller vouches it matches), skipping the content-keyed
            cache lookup on the hot path.
        """
        if precompiled is not None and self._mode != MODE_FAST:
            raise ValueError("precompiled programs are only usable in fast mode")
        if self._mode == MODE_FAST:
            return self._run_fast(program, input_values, precompiled)
        config = self._config
        input_values = np.asarray(input_values, dtype=np.float64)
        regfile = RegisterFile(config)
        dmem = DataMemory(config)
        datapath = TreeDatapath(config)
        self._initialize_dmem(dmem, program, input_values)

        cycles, n_reads, n_writes, n_loads, n_stores = self.execute_cycles(
            program, regfile, dmem, datapath, expected_slots
        )
        value = self._extract_result(regfile, program, input_values)
        return SimulationResult(
            value=value,
            cycles=cycles,
            n_instructions=program.n_instructions,
            n_operations=program.n_arith_ops,
            n_reads=n_reads,
            n_writes=n_writes,
            n_loads=n_loads,
            n_stores=n_stores,
            config=config,
        )

    # ------------------------------------------------------------------ #
    def execute_cycles(
        self,
        program: Program,
        regfile: RegisterFile,
        dmem: DataMemory,
        datapath: TreeDatapath,
        expected_slots: Optional[np.ndarray],
    ) -> Tuple[int, int, int, int, int]:
        """The per-cycle machine loop, shared by both execution modes.

        Issues every instruction against the given state (commit, crossbar
        reads, datapath, write-backs, memory transaction), drains the write
        pipeline, and returns ``(cycles, n_reads, n_writes, n_loads,
        n_stores)``.  The fast path's symbolic precompilation
        (:func:`repro.processor.fastsim.precompile_program`) runs this exact
        loop with a tape-emitting datapath, so the structural rules and the
        utilization accounting have a single definition.
        """
        n_reads = n_writes = n_loads = n_stores = 0
        for cycle, instruction in enumerate(program.instructions):
            regfile.commit_due(cycle)
            port_values = self._perform_reads(regfile, instruction, expected_slots)
            n_reads += len({(r.bank, r.reg) for r in instruction.reads})
            outputs = datapath.evaluate(instruction, port_values)
            n_writes += self._perform_writes(
                regfile, instruction, outputs, cycle, expected_slots
            )
            loads, stores = self._perform_mem(regfile, dmem, instruction, cycle)
            n_loads += loads
            n_stores += stores

        drain_cycle = regfile.drain()
        cycles = max(program.n_instructions, drain_cycle + 1)
        return cycles, n_reads, n_writes, n_loads, n_stores

    # ------------------------------------------------------------------ #
    def _run_fast(
        self,
        program: Program,
        input_values: Sequence[float],
        precompiled: Optional[FastProgram] = None,
    ) -> SimulationResult:
        compiled = precompiled or fast_program(program, self._config)
        value = compiled.execute(np.asarray(input_values, dtype=np.float64))
        return SimulationResult(
            value=value,
            cycles=compiled.cycles,
            n_instructions=program.n_instructions,
            n_operations=program.n_arith_ops,
            n_reads=compiled.n_reads,
            n_writes=compiled.n_writes,
            n_loads=compiled.n_loads,
            n_stores=compiled.n_stores,
            config=self._config,
        )

    # ------------------------------------------------------------------ #
    def _initialize_dmem(
        self, dmem: DataMemory, program: Program, input_values: np.ndarray
    ) -> None:
        for row_index, row in enumerate(program.dmem_image):
            lane_values = []
            for slot in row:
                if slot is None:
                    lane_values.append(None)
                else:
                    if not 0 <= slot < len(input_values):
                        raise StructuralHazardError(
                            f"data-memory image references input slot {slot}, but "
                            f"only {len(input_values)} input values were provided"
                        )
                    lane_values.append(float(input_values[slot]))
            dmem.write_row(row_index, lane_values)

    def _perform_reads(
        self,
        regfile: RegisterFile,
        instruction: Instruction,
        expected_slots: Optional[np.ndarray],
    ) -> Dict[Tuple[int, int], PEValue]:
        config = self._config
        port_values: Dict[Tuple[int, int], PEValue] = {}
        banks_in_use: Dict[int, Tuple[int, int]] = {}
        for spec in instruction.reads:
            tree, port = spec.port
            if not 0 <= tree < config.n_trees:
                raise StructuralHazardError(f"read targets unknown tree {tree}")
            if not 0 <= port < config.input_ports_per_tree:
                raise StructuralHazardError(
                    f"read targets port {port} but trees only have "
                    f"{config.input_ports_per_tree} input ports"
                )
            if spec.port in port_values:
                raise StructuralHazardError(f"port {spec.port} is driven twice")
            cell = (spec.bank, spec.reg)
            previous = banks_in_use.get(spec.bank)
            if previous is not None and previous != cell:
                raise StructuralHazardError(
                    f"crossbar conflict: bank {spec.bank} read at two different "
                    f"registers ({previous[1]} and {spec.reg}) in one cycle"
                )
            banks_in_use[spec.bank] = cell
            value, stored_slot = regfile.read(spec.bank, spec.reg)
            if value is None:
                raise UninitializedReadError(
                    f"read of bank {spec.bank} reg {spec.reg} before any write"
                )
            if self._strict and spec.slot is not None:
                if stored_slot is not None and stored_slot != spec.slot:
                    raise VerificationError(
                        f"bank {spec.bank} reg {spec.reg} holds slot {stored_slot}, "
                        f"but the program expected slot {spec.slot}"
                    )
                self._check_value(expected_slots, spec.slot, value, "read")
            port_values[spec.port] = PEValue(value, spec.slot)
        return port_values

    def _perform_writes(
        self,
        regfile: RegisterFile,
        instruction: Instruction,
        outputs: Dict[Tuple[int, int, int], PEValue],
        cycle: int,
        expected_slots: Optional[np.ndarray],
    ) -> int:
        config = self._config
        written = 0
        for spec in instruction.writes:
            tree, level, pos = spec.pe
            opcode = instruction.pe_ops.get(spec.pe, OP_NOP)
            if opcode == OP_NOP:
                raise StructuralHazardError(
                    f"write-back from idle PE {spec.pe} (no opcode configured)"
                )
            output = outputs.get(spec.pe)
            if output is None:
                raise UninitializedReadError(f"write-back from PE {spec.pe} with no output")
            allowed = config.allowed_write_banks(tree, level, pos)
            if spec.bank not in allowed:
                raise StructuralHazardError(
                    f"PE {spec.pe} may only write banks {allowed}, not {spec.bank}"
                )
            if self._strict and spec.slot is not None:
                self._check_value(expected_slots, spec.slot, output.value, "write")
            readable = cycle + config.result_latency(level + 1)
            regfile.schedule_write(
                spec.bank, spec.reg, output.value, readable, slot=spec.slot
            )
            written += 1
        return written

    def _perform_mem(
        self,
        regfile: RegisterFile,
        dmem: DataMemory,
        instruction: Instruction,
        cycle: int,
    ) -> Tuple[int, int]:
        mem = instruction.mem
        if mem is None:
            return 0, 0
        config = self._config
        if not 0 <= mem.reg < config.bank_depth:
            raise StructuralHazardError(f"memory transaction register {mem.reg} out of range")
        if mem.kind == "load":
            slots = mem.slots or tuple([None] * config.n_banks)
            for bank in range(config.n_banks):
                value = dmem.read_lane(mem.row, bank)
                if value is None:
                    continue
                regfile.schedule_write(
                    bank,
                    mem.reg,
                    value,
                    cycle + config.load_latency,
                    slot=slots[bank] if bank < len(slots) else None,
                    from_memory_port=True,
                )
            return 1, 0
        # Store: capture the committed register state into the row.
        row_values = []
        for bank in range(config.n_banks):
            value, _ = regfile.read(bank, mem.reg)
            row_values.append(value)
        dmem.write_row(mem.row, row_values)
        return 0, 1

    def _extract_result(
        self, regfile: RegisterFile, program: Program, input_values: np.ndarray
    ) -> float:
        if program.result_location is None:
            return float(input_values[program.result_slot])
        bank, reg = program.result_location
        value, _ = regfile.read(bank, reg)
        if value is None:
            raise UninitializedReadError(
                f"program finished but the result register (bank {bank}, reg {reg}) "
                "was never written"
            )
        return float(value)

    def _check_value(
        self,
        expected_slots: Optional[np.ndarray],
        slot: int,
        value: float,
        what: str,
    ) -> None:
        if expected_slots is None:
            return
        if not 0 <= slot < len(expected_slots):
            raise VerificationError(f"{what} annotated with unknown slot {slot}")
        expected = float(expected_slots[slot])
        if not np.isclose(value, expected, rtol=_RTOL, atol=_ATOL):
            raise VerificationError(
                f"{what} of slot {slot}: transported value {value!r} does not match "
                f"the reference value {expected!r}"
            )


def simulate_program(
    program: Program,
    input_values: Sequence[float],
    config: ProcessorConfig,
    expected_slots: Optional[np.ndarray] = None,
    strict: bool = True,
    mode: Optional[str] = None,
    check: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run ``program``.

    With ``check=True`` the program is executed in *both* modes and the two
    results are compared exactly (see :func:`cross_check_modes`); the fast
    result is returned.
    """
    if check:
        return cross_check_modes(program, input_values, config, expected_slots)
    return Simulator(config, strict=strict, mode=mode).run(
        program, input_values, expected_slots
    )


#: Fields of :class:`SimulationResult` that both modes must agree on exactly.
_CHECKED_FIELDS = (
    "value",
    "cycles",
    "n_instructions",
    "n_operations",
    "n_reads",
    "n_writes",
    "n_loads",
    "n_stores",
)


def cross_check_modes(
    program: Program,
    input_values: Sequence[float],
    config: ProcessorConfig,
    expected_slots: Optional[np.ndarray] = None,
    precompiled: Optional[FastProgram] = None,
) -> SimulationResult:
    """Run ``program`` in fast *and* strict mode and compare the results.

    Comparison is exact (``==``, no tolerance): the fast tapes apply the same
    IEEE-754 operations to the same operand pairings as the interpreter, so
    any difference — in the output value, the cycle count or any utilization
    counter — is a bug and raises
    :class:`~repro.processor.errors.VerificationError`.  Returns the fast
    result on agreement.
    """
    fast = Simulator(config, mode=MODE_FAST).run(
        program, input_values, precompiled=precompiled
    )
    strict = Simulator(config, strict=True, mode=MODE_STRICT).run(
        program, input_values, expected_slots
    )
    mismatches = [
        f"{name}: fast={getattr(fast, name)!r} strict={getattr(strict, name)!r}"
        for name in _CHECKED_FIELDS
        if getattr(fast, name) != getattr(strict, name)
    ]
    if mismatches:
        raise VerificationError(
            "fast simulator mode disagrees with strict mode: "
            + "; ".join(mismatches)
        )
    return fast
