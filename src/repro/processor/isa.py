"""VLIW instruction set of the SPN processor.

One :class:`Instruction` is issued per cycle and describes everything the
machine does for the cone(s) launched in that cycle:

* ``reads`` — for each crossbar input port, which (bank, register) feeds it;
* ``pe_ops`` — the opcode of every PE that participates (ADD, MUL, PASS_A,
  PASS_B); unspecified PEs are idle (NOP);
* ``writes`` — which PE outputs are written back to which (bank, register);
* ``mem`` — at most one vector load/store between a data-memory row and one
  register index of every bank.

The configuration bits travel with the data through the pipeline registers of
the tree, so an instruction fully describes one issue slot even though the
cone's result only becomes readable ``level + pe_latency`` cycles later (see
:class:`repro.processor.config.ProcessorConfig.result_latency`).

Read and write specifications optionally carry the operation-list slot index
they are expected to transport (``slot``); the simulator checks these in
strict mode, which turns silent compiler bugs (clobbered registers, hazard
violations) into immediate, located errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Opcode",
    "OP_NOP",
    "OP_ADD",
    "OP_MUL",
    "OP_PASS_A",
    "OP_PASS_B",
    "PEId",
    "PortId",
    "ReadSpec",
    "WriteSpec",
    "MemOp",
    "Instruction",
    "Program",
]

# Opcodes are plain strings to keep programs trivially serializable.
Opcode = str
OP_NOP: Opcode = "nop"
OP_ADD: Opcode = "add"
OP_MUL: Opcode = "mul"
OP_PASS_A: Opcode = "pass_a"
OP_PASS_B: Opcode = "pass_b"

_VALID_OPCODES = (OP_NOP, OP_ADD, OP_MUL, OP_PASS_A, OP_PASS_B)

#: A PE is addressed by (tree, level, position-within-level).
PEId = Tuple[int, int, int]
#: A crossbar input port is addressed by (tree, port-index); leaf PE ``p``
#: of a tree is fed by ports ``2p`` (operand A) and ``2p + 1`` (operand B).
PortId = Tuple[int, int]


@dataclass(frozen=True)
class ReadSpec:
    """One crossbar read: register ``reg`` of ``bank`` drives port ``port``."""

    port: PortId
    bank: int
    reg: int
    #: Operation-list slot expected to be stored there (strict-mode check only).
    slot: Optional[int] = None


@dataclass(frozen=True)
class WriteSpec:
    """One register-file write-back from the output of PE ``pe``."""

    pe: PEId
    bank: int
    reg: int
    #: Operation-list slot carried by the value (strict-mode check only).
    slot: Optional[int] = None


@dataclass(frozen=True)
class MemOp:
    """A vector transaction between the data memory and the register file.

    ``load`` copies data-memory row ``row`` into register ``reg`` of every
    bank; ``store`` copies register ``reg`` of every bank into row ``row``.
    """

    kind: str
    row: int
    reg: int
    #: For loads: per-bank slot annotations (strict-mode check only).
    slots: Optional[Tuple[Optional[int], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store"):
            raise ValueError(f"mem op kind must be 'load' or 'store', got {self.kind!r}")


@dataclass
class Instruction:
    """One VLIW instruction (one issue cycle)."""

    reads: List[ReadSpec] = field(default_factory=list)
    pe_ops: Dict[PEId, Opcode] = field(default_factory=dict)
    writes: List[WriteSpec] = field(default_factory=list)
    mem: Optional[MemOp] = None
    #: Free-form annotation (cone id, source line) used by the disassembler.
    comment: str = ""

    def __post_init__(self) -> None:
        for opcode in self.pe_ops.values():
            if opcode not in _VALID_OPCODES:
                raise ValueError(f"unknown opcode {opcode!r}")

    # ------------------------------------------------------------------ #
    @property
    def n_arith_ops(self) -> int:
        """Number of real arithmetic operations (ADD/MUL) in this instruction."""
        return sum(1 for op in self.pe_ops.values() if op in (OP_ADD, OP_MUL))

    @property
    def is_idle(self) -> bool:
        return not self.pe_ops and not self.reads and not self.writes and self.mem is None

    def read_banks(self) -> List[int]:
        return [r.bank for r in self.reads]

    def write_banks(self) -> List[int]:
        return [w.bank for w in self.writes]


@dataclass
class Program:
    """A compiled VLIW program plus the metadata needed to run and check it.

    Attributes
    ----------
    instructions:
        The instruction stream, one entry per issue cycle.
    dmem_image:
        Initial contents of the data memory: ``dmem_image[row][bank]`` is the
        operation-list input slot whose value must be placed there before
        execution (``None`` for unused lanes).  The simulator fills the values
        from the input vector of a query.
    result_location:
        ``(bank, reg)`` holding the SPN root value after the program drains,
        or ``None`` when the root is an input slot (empty program).
    result_slot:
        Operation-list slot index of the root value.
    n_operations:
        Number of arithmetic operations in the source SPN (for throughput
        accounting).
    """

    instructions: List[Instruction] = field(default_factory=list)
    dmem_image: List[List[Optional[int]]] = field(default_factory=list)
    result_location: Optional[Tuple[int, int]] = None
    result_slot: int = 0
    n_operations: int = 0

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    @property
    def n_arith_ops(self) -> int:
        return sum(instr.n_arith_ops for instr in self.instructions)

    @property
    def n_loads(self) -> int:
        return sum(1 for i in self.instructions if i.mem is not None and i.mem.kind == "load")

    @property
    def n_stores(self) -> int:
        return sum(1 for i in self.instructions if i.mem is not None and i.mem.kind == "store")
