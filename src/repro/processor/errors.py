"""Exception types raised by the processor simulator and the compiler."""

from __future__ import annotations

__all__ = [
    "ProcessorError",
    "StructuralHazardError",
    "UninitializedReadError",
    "VerificationError",
    "CompilationError",
    "ResourceError",
]


class ProcessorError(RuntimeError):
    """Base class for all simulator- and compiler-side errors."""


class StructuralHazardError(ProcessorError):
    """A program violated a structural constraint of the machine.

    Examples: two reads of the same bank in one cycle, a PE writing to a bank
    outside its allowed window, two writes committing to the same bank in the
    same cycle, out-of-range register or data-memory indices.
    """


class UninitializedReadError(ProcessorError):
    """A program read a register or fed a PE before any value was available."""


class VerificationError(ProcessorError):
    """Strict-mode check failed: a transported value does not match the
    reference evaluation of the operation list."""


class CompilationError(ProcessorError):
    """The compiler could not produce a valid program."""


class ResourceError(CompilationError):
    """The SPN does not fit the machine (register file or data memory overflow)."""
