"""Textual assembly format for VLIW programs (assembler and disassembler).

The cycle-accurate simulator consumes :class:`~repro.processor.isa.Program`
objects directly, but a textual form is invaluable for debugging compiler
output, writing hand-crafted test programs and diffing schedules.  The format
is line oriented; one instruction per ``instr`` block::

    program v1 ops=123 result=5:17 result_slot=420
    dmem 0 3:1 7:- 12:0 ...            # row, then one slot (or '-') per bank
    instr
      read t0.p3 b5 r12 slot=17
      pe t0.l0.p1 mul
      write t0.l2.p0 b3 r7 slot=33
      load row=4 reg=60
      store row=9 reg=61
    end

Fields mirror the ISA exactly; see :mod:`repro.processor.isa` for semantics.
"""

from __future__ import annotations

from typing import List, Optional

from .isa import Instruction, MemOp, Program, ReadSpec, WriteSpec

__all__ = ["assemble", "disassemble"]

_HEADER = "program v1"


def _format_slot(slot: Optional[int]) -> str:
    return "-" if slot is None else str(slot)


def _parse_slot(text: str) -> Optional[int]:
    return None if text == "-" else int(text)


def disassemble(program: Program) -> str:
    """Render ``program`` in the textual assembly format."""
    lines: List[str] = []
    result = (
        f"{program.result_location[0]}:{program.result_location[1]}"
        if program.result_location is not None
        else "-"
    )
    lines.append(
        f"{_HEADER} ops={program.n_operations} result={result} "
        f"result_slot={program.result_slot}"
    )
    for row_index, row in enumerate(program.dmem_image):
        cells = " ".join(f"{bank}:{_format_slot(slot)}" for bank, slot in enumerate(row))
        lines.append(f"dmem {row_index} {cells}")
    for instruction in program.instructions:
        lines.append("instr")
        for read in instruction.reads:
            lines.append(
                f"  read t{read.port[0]}.p{read.port[1]} b{read.bank} r{read.reg} "
                f"slot={_format_slot(read.slot)}"
            )
        for pe, opcode in sorted(instruction.pe_ops.items()):
            lines.append(f"  pe t{pe[0]}.l{pe[1]}.p{pe[2]} {opcode}")
        for write in instruction.writes:
            lines.append(
                f"  write t{write.pe[0]}.l{write.pe[1]}.p{write.pe[2]} "
                f"b{write.bank} r{write.reg} slot={_format_slot(write.slot)}"
            )
        if instruction.mem is not None:
            mem = instruction.mem
            lines.append(f"  {mem.kind} row={mem.row} reg={mem.reg}")
        lines.append("end")
    return "\n".join(lines) + "\n"


def assemble(text: str) -> Program:
    """Parse the textual assembly format back into a :class:`Program`."""
    lines = [ln.rstrip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln.strip() and not ln.strip().startswith("#")]
    if not lines or not lines[0].startswith(_HEADER):
        raise ValueError(f"missing program header; expected {_HEADER!r}")

    header_fields = dict(
        field.split("=", 1) for field in lines[0][len(_HEADER) :].split() if "=" in field
    )
    n_operations = int(header_fields.get("ops", "0"))
    result_slot = int(header_fields.get("result_slot", "0"))
    result_text = header_fields.get("result", "-")
    result_location = None
    if result_text != "-":
        bank_text, reg_text = result_text.split(":")
        result_location = (int(bank_text), int(reg_text))

    dmem_image: List[List[Optional[int]]] = []
    instructions: List[Instruction] = []
    current: Optional[Instruction] = None

    for line in lines[1:]:
        stripped = line.strip()
        if stripped.startswith("dmem "):
            parts = stripped.split()
            row_index = int(parts[1])
            row: List[Optional[int]] = []
            for cell in parts[2:]:
                _, slot_text = cell.split(":")
                row.append(_parse_slot(slot_text))
            while len(dmem_image) <= row_index:
                dmem_image.append([])
            dmem_image[row_index] = row
            continue
        if stripped == "instr":
            current = Instruction()
            continue
        if stripped == "end":
            if current is None:
                raise ValueError("'end' without a matching 'instr'")
            instructions.append(current)
            current = None
            continue
        if current is None:
            raise ValueError(f"unexpected line outside an instruction block: {line!r}")
        parts = stripped.split()
        kind = parts[0]
        if kind == "read":
            tree, port = _parse_port(parts[1])
            bank = int(parts[2][1:])
            reg = int(parts[3][1:])
            slot = _parse_slot(parts[4].split("=", 1)[1])
            current.reads.append(ReadSpec(port=(tree, port), bank=bank, reg=reg, slot=slot))
        elif kind == "pe":
            tree, level, pos = _parse_pe(parts[1])
            current.pe_ops[(tree, level, pos)] = parts[2]
        elif kind == "write":
            tree, level, pos = _parse_pe(parts[1])
            bank = int(parts[2][1:])
            reg = int(parts[3][1:])
            slot = _parse_slot(parts[4].split("=", 1)[1])
            current.writes.append(
                WriteSpec(pe=(tree, level, pos), bank=bank, reg=reg, slot=slot)
            )
        elif kind in ("load", "store"):
            fields = dict(f.split("=", 1) for f in parts[1:])
            current.mem = MemOp(kind=kind, row=int(fields["row"]), reg=int(fields["reg"]))
        else:
            raise ValueError(f"unknown assembly directive {kind!r}")

    if current is not None:
        raise ValueError("unterminated instruction block at end of file")
    return Program(
        instructions=instructions,
        dmem_image=dmem_image,
        result_location=result_location,
        result_slot=result_slot,
        n_operations=n_operations,
    )


def _parse_port(text: str) -> tuple:
    tree_text, port_text = text.split(".")
    return int(tree_text[1:]), int(port_text[1:])


def _parse_pe(text: str) -> tuple:
    tree_text, level_text, pos_text = text.split(".")
    return int(tree_text[1:]), int(level_text[1:]), int(pos_text[1:])
