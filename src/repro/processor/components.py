"""Structural components of the SPN processor used by the cycle-accurate simulator.

Each class models one block of Fig. 3 — the banked register file (with write
pipelining), the vector-addressed data memory and the combinational PE-tree
datapath — and enforces the corresponding structural constraints, raising
:class:`~repro.processor.errors.StructuralHazardError` or
:class:`~repro.processor.errors.UninitializedReadError` when a program
violates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .config import ProcessorConfig
from .errors import StructuralHazardError, UninitializedReadError
from .isa import (
    OP_ADD,
    OP_MUL,
    OP_NOP,
    OP_PASS_A,
    OP_PASS_B,
    Instruction,
    PEId,
)

__all__ = ["RegisterFile", "DataMemory", "TreeDatapath", "PEValue"]


@dataclass
class PEValue:
    """A value travelling through the datapath, with its provenance.

    ``slot`` is the operation-list slot the value corresponds to when known
    (used for strict-mode verification); ``None`` means "untracked".
    """

    value: float
    slot: Optional[int] = None


class RegisterFile:
    """The banked register file with pipelined (delayed) write commits.

    Writes are scheduled with the cycle at which they become readable;
    :meth:`commit_due` applies them at the start of that cycle.  The class
    also checks the per-bank write-port constraint: at most one PE-side write
    may commit to a bank in any given cycle (vector loads use the dedicated
    memory port and are tracked separately).
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self._config = config
        self._values: List[List[Optional[float]]] = [
            [None] * config.bank_depth for _ in range(config.n_banks)
        ]
        self._slots: List[List[Optional[int]]] = [
            [None] * config.bank_depth for _ in range(config.n_banks)
        ]
        # Pending writes keyed by readable cycle.
        self._pending: Dict[int, List[Tuple[int, int, float, Optional[int]]]] = {}
        # Number of PE-port writes committing per (cycle, bank).
        self._pe_port_usage: Dict[Tuple[int, int], int] = {}
        self._max_pending_cycle = -1

    # ------------------------------------------------------------------ #
    def _check_address(self, bank: int, reg: int) -> None:
        if not 0 <= bank < self._config.n_banks:
            raise StructuralHazardError(f"bank index {bank} out of range")
        if not 0 <= reg < self._config.bank_depth:
            raise StructuralHazardError(f"register index {reg} out of range")

    def read(self, bank: int, reg: int) -> Tuple[Optional[float], Optional[int]]:
        """Return the committed (value, slot) stored at ``bank``/``reg``."""
        self._check_address(bank, reg)
        return self._values[bank][reg], self._slots[bank][reg]

    def schedule_write(
        self,
        bank: int,
        reg: int,
        value: float,
        readable_cycle: int,
        slot: Optional[int] = None,
        from_memory_port: bool = False,
    ) -> None:
        """Schedule a write that becomes readable at ``readable_cycle``."""
        self._check_address(bank, reg)
        if not from_memory_port:
            key = (readable_cycle, bank)
            usage = self._pe_port_usage.get(key, 0)
            if usage >= 1:
                raise StructuralHazardError(
                    f"write-port conflict: two PE writes commit to bank {bank} "
                    f"in cycle {readable_cycle}"
                )
            self._pe_port_usage[key] = usage + 1
        self._pending.setdefault(readable_cycle, []).append((bank, reg, value, slot))
        self._max_pending_cycle = max(self._max_pending_cycle, readable_cycle)

    def commit_due(self, cycle: int) -> None:
        """Commit every pending write that becomes readable at ``cycle`` or earlier."""
        due = [c for c in self._pending if c <= cycle]
        for c in sorted(due):
            for bank, reg, value, slot in self._pending.pop(c):
                self._values[bank][reg] = value
                self._slots[bank][reg] = slot

    def drain(self) -> int:
        """Commit all outstanding writes and return the last readable cycle."""
        last = self._max_pending_cycle
        self.commit_due(last if last >= 0 else 0)
        return max(last, 0)


class DataMemory:
    """Vector-addressed data memory: one row holds one word per bank."""

    def __init__(self, config: ProcessorConfig) -> None:
        self._config = config
        self._rows: List[List[Optional[float]]] = [
            [None] * config.n_banks for _ in range(config.dmem_rows)
        ]

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._config.dmem_rows:
            raise StructuralHazardError(f"data-memory row {row} out of range")

    def write_row(self, row: int, values: List[Optional[float]]) -> None:
        self._check_row(row)
        if len(values) != self._config.n_banks:
            raise StructuralHazardError(
                f"data-memory row must have {self._config.n_banks} lanes, "
                f"got {len(values)}"
            )
        self._rows[row] = list(values)

    def read_lane(self, row: int, bank: int) -> Optional[float]:
        self._check_row(row)
        return self._rows[row][bank]

    def read_row(self, row: int) -> List[Optional[float]]:
        self._check_row(row)
        return list(self._rows[row])


class TreeDatapath:
    """Combinational evaluation of the PE trees for one instruction.

    The configuration bits travel with the data through the pipeline, so the
    whole cone described by one instruction can be evaluated here in one call;
    the register-file commit delay is applied by the simulator when it
    schedules the write-backs.
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self._config = config

    def evaluate(
        self,
        instruction: Instruction,
        port_values: Dict[Tuple[int, int], PEValue],
    ) -> Dict[PEId, PEValue]:
        """Compute the output of every configured PE.

        ``port_values`` maps crossbar ports (tree, port-index) to the values
        read from the register file this cycle.  Only PEs present in the
        instruction's ``pe_ops`` (with a non-NOP opcode) produce outputs.
        """
        config = self._config
        outputs: Dict[PEId, PEValue] = {}
        # Evaluate level by level so parent PEs can consume child outputs.
        for level in range(config.n_levels):
            for (tree, lvl, pos), opcode in instruction.pe_ops.items():
                if lvl != level or opcode == OP_NOP:
                    continue
                a, b = self._operands(instruction, outputs, port_values, tree, lvl, pos)
                outputs[(tree, lvl, pos)] = self._apply(opcode, a, b, (tree, lvl, pos))
        return outputs

    # ------------------------------------------------------------------ #
    def _operands(
        self,
        instruction: Instruction,
        outputs: Dict[PEId, PEValue],
        port_values: Dict[Tuple[int, int], PEValue],
        tree: int,
        level: int,
        pos: int,
    ) -> Tuple[Optional[PEValue], Optional[PEValue]]:
        if level == 0:
            a = port_values.get((tree, 2 * pos))
            b = port_values.get((tree, 2 * pos + 1))
            return a, b
        left: PEId = (tree, level - 1, 2 * pos)
        right: PEId = (tree, level - 1, 2 * pos + 1)
        return outputs.get(left), outputs.get(right)

    @staticmethod
    def _apply(
        opcode: str, a: Optional[PEValue], b: Optional[PEValue], pe: PEId
    ) -> PEValue:
        if opcode == OP_PASS_A:
            if a is None:
                raise UninitializedReadError(f"PE {pe}: pass_a with no A operand")
            return PEValue(a.value, a.slot)
        if opcode == OP_PASS_B:
            if b is None:
                raise UninitializedReadError(f"PE {pe}: pass_b with no B operand")
            return PEValue(b.value, b.slot)
        if a is None or b is None:
            raise UninitializedReadError(f"PE {pe}: {opcode} with a missing operand")
        if opcode == OP_ADD:
            return PEValue(a.value + b.value, None)
        if opcode == OP_MUL:
            return PEValue(a.value * b.value, None)
        raise StructuralHazardError(f"PE {pe}: unknown opcode {opcode!r}")
