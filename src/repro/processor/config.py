"""Machine description of the SPN processor (Sec. IV of the paper).

A single :class:`ProcessorConfig` object is shared by the compiler
(:mod:`repro.compiler`) and the cycle-accurate simulator
(:mod:`repro.processor.simulator`), so both always agree on the structural
constraints of the machine:

* ``n_trees`` PE trees, each a complete binary tree with ``n_levels`` levels
  (level 0 holds the leaf PEs that read from the crossbar);
* a register file of ``n_banks`` banks with ``bank_depth`` registers each;
  every tree owns a contiguous slice of banks (its private register file);
* a crossbar that lets any leaf-PE input port read any bank, but at most one
  read per bank per cycle across the whole machine;
* per-level write windows: the PE at level ``l``, position ``p`` of a tree may
  write only to a window of ``2**(l+1)`` banks of that tree's slice (2 banks
  for leaf PEs, 4 for the next level, and so on, as in Fig. 3);
* a data memory accessed one vector per cycle: a transaction moves one word
  per bank between the data memory row and a single register index of every
  bank.

The two configurations evaluated in the paper are provided as constructors:
:func:`ptree_config` (2 trees of 4 levels, 30 PEs) and :func:`pvect_config`
(16 single-PE trees, i.e. only the lowest level of PEs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["ProcessorConfig", "ptree_config", "pvect_config"]


@dataclass(frozen=True)
class ProcessorConfig:
    """Structural and timing parameters of the SPN processor."""

    name: str = "Ptree"
    #: Number of PE trees.
    n_trees: int = 2
    #: Levels per tree; a tree has ``2**(n_levels-1)`` leaf PEs and
    #: ``2**n_levels - 1`` PEs in total.
    n_levels: int = 4
    #: Total number of register banks (shared equally among the trees).
    n_banks: int = 32
    #: Registers per bank.
    bank_depth: int = 64
    #: Words per data-memory row (one word per bank).
    dmem_rows: int = 512
    #: Cycles between issuing a vector load and the data being readable.
    load_latency: int = 2
    #: Pipeline stages between a PE producing a value and that value being
    #: readable through the crossbar (registered PE output plus the register
    #: file write-back); a value produced by the PE at level ``l`` is readable
    #: ``l + pe_latency`` cycles after its instruction issued.
    pe_latency: int = 2

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.n_trees < 1 or self.n_levels < 1:
            raise ValueError("n_trees and n_levels must be >= 1")
        if self.n_banks % self.n_trees != 0:
            raise ValueError("n_banks must be divisible by n_trees")
        if self.bank_depth < 2:
            raise ValueError("bank_depth must be >= 2")
        if self.banks_per_tree < self.leaf_pes_per_tree * 2:
            raise ValueError(
                "each tree needs at least two writable banks per leaf PE "
                f"({self.leaf_pes_per_tree * 2} banks/tree, "
                f"got {self.banks_per_tree})"
            )
        if self.dmem_rows < 1:
            raise ValueError("dmem_rows must be >= 1")
        if self.load_latency < 1 or self.pe_latency < 1:
            raise ValueError("latencies must be >= 1")

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #
    @property
    def leaf_pes_per_tree(self) -> int:
        return 2 ** (self.n_levels - 1)

    @property
    def pes_per_tree(self) -> int:
        return 2 ** self.n_levels - 1

    @property
    def n_pes(self) -> int:
        """Total number of processing elements (30 for Ptree, 16 for Pvect)."""
        return self.n_trees * self.pes_per_tree

    @property
    def input_ports_per_tree(self) -> int:
        """Crossbar read ports feeding one tree (two per leaf PE)."""
        return 2 * self.leaf_pes_per_tree

    @property
    def n_input_ports(self) -> int:
        return self.n_trees * self.input_ports_per_tree

    @property
    def banks_per_tree(self) -> int:
        return self.n_banks // self.n_trees

    @property
    def n_registers(self) -> int:
        """Total register count (2K 32-bit registers for both configurations)."""
        return self.n_banks * self.bank_depth

    def tree_bank_range(self, tree: int) -> Tuple[int, int]:
        """Half-open range of bank indices forming tree ``tree``'s private RF."""
        self._check_tree(tree)
        base = tree * self.banks_per_tree
        return base, base + self.banks_per_tree

    def pes_at_level(self, level: int) -> int:
        """Number of PEs per tree at ``level`` (level 0 = leaf PEs)."""
        self._check_level(level)
        return 2 ** (self.n_levels - 1 - level)

    def allowed_write_banks(self, tree: int, level: int, position: int) -> List[int]:
        """Banks the PE at (tree, level, position) is allowed to write.

        Leaf PEs may write to a window of 2 banks, level-1 PEs to 4 banks and
        so on, always within the tree's private slice, mirroring Fig. 3.
        """
        self._check_tree(tree)
        self._check_level(level)
        n_pes = self.pes_at_level(level)
        if not 0 <= position < n_pes:
            raise ValueError(f"position {position} out of range for level {level}")
        base, _ = self.tree_bank_range(tree)
        window = min(2 ** (level + 1), self.banks_per_tree)
        start = base + (position * window) % self.banks_per_tree
        return [start + i for i in range(window)]

    def result_latency(self, cone_depth: int) -> int:
        """Cycles until the output of a cone of ``cone_depth`` levels is readable."""
        if not 1 <= cone_depth <= self.n_levels:
            raise ValueError(
                f"cone depth must be in [1, {self.n_levels}], got {cone_depth}"
            )
        return cone_depth - 1 + self.pe_latency

    # ------------------------------------------------------------------ #
    def _check_tree(self, tree: int) -> None:
        if not 0 <= tree < self.n_trees:
            raise ValueError(f"tree index {tree} out of range [0, {self.n_trees})")

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.n_levels:
            raise ValueError(f"level {level} out of range [0, {self.n_levels})")

    def summary(self) -> str:
        """Human-readable one-line summary (used by the Table I report)."""
        return (
            f"{self.name}: {self.n_pes} PEs ({self.n_trees} trees x {self.n_levels} "
            f"levels), {self.n_banks} banks x {self.bank_depth} regs, "
            f"{self.dmem_rows} data-memory rows"
        )


def ptree_config(**overrides) -> ProcessorConfig:
    """The paper's ``Ptree`` configuration: 2 trees with 4 levels of PEs (30 PEs)."""
    params = dict(name="Ptree", n_trees=2, n_levels=4, n_banks=32, bank_depth=64)
    params.update(overrides)
    return ProcessorConfig(**params)


def pvect_config(**overrides) -> ProcessorConfig:
    """The paper's ``Pvect`` configuration: only the 16 lowest-level PEs.

    Everything else (register file, crossbar, data memory) is identical to
    ``Ptree``, exactly as in the paper's comparison.
    """
    params = dict(name="Pvect", n_trees=16, n_levels=1, n_banks=32, bank_depth=64)
    params.update(overrides)
    return ProcessorConfig(**params)
