"""Unified typed query API: one front door for every query, engine, platform.

This package is the public entry point for probabilistic inference in the
repository.  Queries are typed objects (:class:`Likelihood`,
:class:`LogLikelihood`, :class:`Marginal`, :class:`Conditional`,
:class:`MPE`, plus the analysis kinds :class:`Sample`,
:class:`Expectation`, :class:`Entropy`, :class:`MutualInformation` and
:class:`Classify` — all carrying batched evidence arrays in the canonical
:data:`~repro.spn.evaluate.MARGINALIZED` convention) and an
:class:`InferenceSession` binds a model to an engine, plans each query into
the minimal set of vectorized tape evaluations, executes it, and measures
the same model on any registered platform engine.

Quick tour::

    import numpy as np
    from repro.api import Conditional, InferenceSession, Marginal

    session = InferenceSession("Audio")            # suite name or SPN object
    lls = session.run(Marginal(evidence, log=True))
    probs = session.run(Conditional(query=q_rows, evidence=e_rows))
    #   ^ one batch = exactly two log-domain tape passes, any row count
    cpu = session.throughput("CPU").ops_per_cycle  # the paper's metric

The same query objects serialize losslessly (:func:`serialize_query` /
:func:`deserialize_query`) and travel through the serving layer
(:mod:`repro.serving`) unchanged, so a served answer is bit-identical to an
offline :meth:`InferenceSession.run`.  The scalar functions in
:mod:`repro.spn.queries` are deprecated thin wrappers over single-row
sessions.  See ``docs/queries.md`` for the full taxonomy, session
lifecycle and planning rules.
"""

from .queries import (
    MPE,
    QUERY_KINDS,
    Classify,
    Conditional,
    Entropy,
    Expectation,
    Likelihood,
    LogLikelihood,
    Marginal,
    MutualInformation,
    Query,
    QueryKind,
    Sample,
    as_kind,
    deserialize_query,
    evidence_rows,
    query_type,
    serialize_query,
)
from .session import EvalPass, InferenceSession, QueryPlan, session_for

__all__ = [
    "QueryKind",
    "QUERY_KINDS",
    "as_kind",
    "Query",
    "Likelihood",
    "LogLikelihood",
    "Marginal",
    "Conditional",
    "MPE",
    "Sample",
    "Expectation",
    "Entropy",
    "MutualInformation",
    "Classify",
    "evidence_rows",
    "query_type",
    "serialize_query",
    "deserialize_query",
    "EvalPass",
    "QueryPlan",
    "InferenceSession",
    "session_for",
]
