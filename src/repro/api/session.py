"""The inference session: one front door for every query, engine and platform.

:class:`InferenceSession` binds a model — an :class:`~repro.spn.graph.SPN`
object or a suite-registry benchmark name — to an execution engine
(``"vectorized"`` tape or ``"python"`` reference walk) and answers every
typed query of :mod:`repro.api.queries` through the same batched dispatch:

* :meth:`plan` turns a query into its :class:`QueryPlan` — the minimal set
  of vectorized tape evaluations (a :class:`~repro.api.queries.Conditional`
  batch is exactly **two** log-domain passes: joint and evidence,
  subtracted — never a per-row python walk);
* :meth:`run` executes that plan with the existing cached-tape machinery
  (:func:`repro.spn.compiled.cached_tape`) and optional ``check=True``
  engine cross-checking;
* :meth:`throughput` measures the bound model on any registered *platform*
  engine (:mod:`repro.platforms`) — the paper's ops/cycle metric — so the
  experiments issue queries and throughput probes through one object.

Every evaluation pass is observable: the session counts tape evaluations
(:attr:`InferenceSession.evaluations`) and calls an optional
:attr:`on_evaluate` hook, which is how the tests assert the planning
guarantees (e.g. two passes per conditional batch, not ``2 * n_rows``).

Sessions are cheap — the heavy artifacts (SPN, tape, operation list,
partition function) are cached per model — and single-row sessions back the
deprecated scalar wrappers in :mod:`repro.spn.queries`, so the scalar and
batched paths cannot drift.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..observability import TRACER
from ..spn.compiled import resolve_engine
from ..spn.evaluate import evaluate_batch, evaluate_log_batch, row_evidence
from ..spn.memplan import ExecutionOptions, resolve_execution
from ..spn.graph import SPN
from ..spn.linearize import OperationList, linearize
from ..spn.nodes import IndicatorLeaf
from .queries import (
    MPE,
    Classify,
    Conditional,
    Entropy,
    Expectation,
    Likelihood,
    LogLikelihood,
    Marginal,
    MutualInformation,
    Query,
    QueryKind,
    Sample,
    evidence_rows,
)

__all__ = ["EvalPass", "QueryPlan", "InferenceSession", "session_for"]


@dataclass(frozen=True)
class EvalPass:
    """One planned tape evaluation: its domain and what it evaluates."""

    domain: str  # "linear" | "log"
    operand: str  # "evidence" | "joint" | "partition"
    cached: bool = False  # True: served from the session cache when warm


@dataclass(frozen=True)
class QueryPlan:
    """The evaluation recipe for one query batch.

    ``passes`` lists the tape evaluations in execution order;
    ``postprocess`` names the elementwise combination applied afterwards.
    ``n_evaluations`` is the number of *uncached* batched tape passes the
    plan performs — the quantity the evaluation-count hook observes.

    ``tape_slots``/``peak_slots`` are the memory-plan statistics of the
    session's executor (:class:`~repro.spn.memplan.MemoryPlan`): the dense
    slot count of the compiled tape and the physical working-set rows each
    pass actually keeps resident (zero for the python reference engine,
    which has no tape).  ``peak_bytes_per_row`` is the executor's peak
    slot-buffer footprint per evidence row.
    """

    kind: QueryKind
    n_rows: int
    passes: Tuple[EvalPass, ...]
    postprocess: str = ""
    tape_slots: int = 0
    peak_slots: int = 0

    @property
    def n_evaluations(self) -> int:
        return sum(1 for p in self.passes if not p.cached)

    @property
    def peak_bytes_per_row(self) -> int:
        return self.peak_slots * 8


def _entropy_terms(probs: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of each row of ``probs``, with 0 log 0 = 0.

    ``nan`` rows (zero-probability evidence) come out finite here — the
    callers re-mask them from the evidence pass, which keeps this helper a
    pure elementwise reduction.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log(probs), 0.0)
    return -terms.sum(axis=1)


class InferenceSession:
    """Bind one model to one engine and answer every typed query through it.

    Parameters
    ----------
    model:
        An :class:`~repro.spn.graph.SPN` or a suite-registry benchmark name
        (resolved via :func:`repro.suite.registry.build_benchmark`).
    engine:
        Functional execution engine for the tape passes, as accepted by
        :func:`repro.spn.evaluate.evaluate_batch` (``"vectorized"``
        default; ``"python"`` for the reference walk).
    check:
        Cross-check every vectorized pass against the reference engine on a
        batch prefix (:class:`~repro.spn.compiled.EngineMismatchError` on
        disagreement).
    warm:
        Compile and pin the model's tape at construction instead of on the
        first query (keeps compilation latency out of the serving path).
    execution:
        Executor for the vectorized tape passes — an
        :class:`~repro.spn.memplan.ExecutionOptions` or a bare mode string
        (``"planned"`` default, ``"sharded"``, ``"legacy"``).  All modes
        are bit-identical; the knob chooses memory layout and shard
        parallelism, and :meth:`plan` reports the resulting working set.
    tape:
        A precompiled :class:`~repro.spn.compiled.CompiledTape` for
        ``model`` (AOT artifacts, :mod:`repro.lifecycle`).  The session
        adopts it into the tape cache, so every vectorized pass runs the
        shipped tape and construction never compiles.
    n_vars:
        Explicit evidence width (overrides the width derived from the
        model's indicators); AOT artifacts record it so a loaded model
        admits the exact same evidence shapes as the one that was saved.
    """

    def __init__(
        self,
        model: Union[SPN, str],
        engine: str = "vectorized",
        check: bool = False,
        warm: bool = False,
        execution: Union[ExecutionOptions, str, None] = None,
        tape=None,
        n_vars: Optional[int] = None,
    ) -> None:
        if isinstance(model, str):
            from ..suite.registry import benchmark_n_vars, build_benchmark

            self.name: Optional[str] = model
            self.spn: SPN = build_benchmark(model)
            self.n_vars: int = benchmark_n_vars(model)
        else:
            self.name = None
            self.spn = model
            self.n_vars = (
                max(
                    (n.var for n in model.nodes() if isinstance(n, IndicatorLeaf)),
                    default=-1,
                )
                + 1
            )
        if n_vars is not None:
            self.n_vars = int(n_vars)
        self.engine = resolve_engine(engine)
        self.check = check
        self.execution = resolve_execution(execution)
        # Guards the evaluation counter and the lazy caches: sessions are
        # shared by serving worker pools (n_workers > 1).
        self._lock = threading.Lock()
        #: Batched tape evaluations performed so far (the plan-count hook).
        self.evaluations: int = 0
        #: Optional callback ``(domain, n_rows)`` invoked per tape pass.
        self.on_evaluate: Optional[Callable[[str, int], None]] = None
        self._log_z: Optional[float] = None
        self._log_z_fingerprint: Optional[tuple] = None
        self._domains: Optional[dict] = None
        self._domains_fingerprint: Optional[tuple] = None
        self._ops: Optional[OperationList] = None
        self.tape = None
        if tape is not None and self.engine == "vectorized":
            from ..spn.compiled import adopt_tape

            self.tape = adopt_tape(self.spn, tape)
        elif warm and self.engine == "vectorized":
            from ..spn.compiled import cached_tape

            self.tape = cached_tape(self.spn)

    # ------------------------------------------------------------------ #
    # Evidence handling
    # ------------------------------------------------------------------ #
    def encode(self, evidence) -> np.ndarray:
        """Normalize evidence to a 2-D batch at least ``n_vars`` wide.

        Wider rows are kept — no indicator reads the surplus columns
        (exact for value queries), and out-of-range observed entries
        survive into MPE completions.  Fixed-width policies on top of this
        (rejecting observed surplus entries, trimming to the model width)
        belong to the serving layer's admission
        (:meth:`repro.serving.server.InferenceServer._encode`).
        """
        return evidence_rows(evidence, self.n_vars)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, query: Query) -> QueryPlan:
        """The minimal evaluation recipe for ``query`` (no execution).

        Planning rules:

        * ``Likelihood`` — one linear pass over the evidence batch.
        * ``LogLikelihood`` — one log pass.
        * ``Marginal`` — one log pass (log or normalized output; the
          normalizing partition pass is cached per session) or one linear
          pass (the raw linear case).
        * ``Conditional`` — exactly **two** log passes, joint and evidence,
          combined elementwise; never a per-row walk, and never more than
          two passes regardless of the batch size.
        * ``Classify`` — the same two-pass shape as ``Conditional``: one
          joint sweep over the target's states and one evidence pass,
          subtracted, for any batch size and state count.
        * ``Expectation`` / ``Entropy`` — exactly **two** log passes: one
          shared state sweep over every requested variable's states and
          one evidence pass; the moments / entropies are elementwise
          post-processing.
        * ``MutualInformation`` — exactly **three** log passes: a pair
          sweep over all requested variable pairs, the single-variable
          state sweep, and the evidence pass.
        * ``Sample`` — one log pass per *free* variable of the batch (a
          multi-valued model variable unobserved in at least one row):
          the exact chain-rule sweep, batched across rows and samples.
        * ``MPE`` — a per-row search whose candidate scoring batches
          through the log tape internally (pass count depends on the
          network, so it is not enumerated here).

        Every plan also carries the executor's memory statistics
        (``tape_slots``, ``peak_slots``): the compiled tape's dense slot
        count and the physical rows the session's execution mode actually
        keeps resident per pass.
        """
        if TRACER.enabled and isinstance(query, Query):
            with TRACER.span(
                "session.plan", kind=query.kind.value, n_rows=query.n_rows
            ) as span:
                result = self._plan(query)
                span.set(passes=result.n_evaluations)
                return result
        return self._plan(query)

    def _plan(self, query: Query) -> QueryPlan:
        stats = self._plan_stats()
        if isinstance(query, Conditional):
            return QueryPlan(
                kind=query.kind,
                n_rows=query.n_rows,
                passes=(EvalPass("log", "joint"), EvalPass("log", "evidence")),
                postprocess="subtract" if query.log else "exp(subtract)",
                **stats,
            )
        if isinstance(query, Marginal):
            passes: List[EvalPass] = []
            if query.log or query.normalize:
                passes.append(EvalPass("log", "evidence"))
            else:
                passes.append(EvalPass("linear", "evidence"))
            if query.normalize:
                passes.append(
                    EvalPass("log", "partition", cached=self._log_z is not None)
                )
            post = ""
            if query.normalize:
                post = "subtract log Z" if query.log else "exp(subtract log Z)"
            return QueryPlan(query.kind, query.n_rows, tuple(passes), post, **stats)
        if isinstance(query, LogLikelihood):
            return QueryPlan(
                query.kind, query.n_rows, (EvalPass("log", "evidence"),), **stats
            )
        if isinstance(query, Likelihood):
            return QueryPlan(
                query.kind, query.n_rows, (EvalPass("linear", "evidence"),), **stats
            )
        if isinstance(query, Classify):
            return QueryPlan(
                kind=query.kind,
                n_rows=query.n_rows,
                passes=(EvalPass("log", "joint"), EvalPass("log", "evidence")),
                postprocess="subtract" if query.log else "exp(subtract)",
                **stats,
            )
        if isinstance(query, (Expectation, Entropy)):
            post = (
                "conditional moments" if isinstance(query, Expectation)
                else "-sum p log p"
            )
            return QueryPlan(
                kind=query.kind,
                n_rows=query.n_rows,
                passes=(EvalPass("log", "state-sweep"), EvalPass("log", "evidence")),
                postprocess=post,
                **stats,
            )
        if isinstance(query, MutualInformation):
            return QueryPlan(
                kind=query.kind,
                n_rows=query.n_rows,
                passes=(
                    EvalPass("log", "pair-sweep"),
                    EvalPass("log", "state-sweep"),
                    EvalPass("log", "evidence"),
                ),
                postprocess="pairwise mutual information",
                **stats,
            )
        if isinstance(query, Sample):
            chain = self._sample_chain(self.encode(query.evidence), self.domains())
            return QueryPlan(
                kind=query.kind,
                n_rows=query.n_rows,
                passes=tuple(EvalPass("log", f"chain:{var}") for var in chain),
                postprocess="inverse-CDF draw per pass",
                **stats,
            )
        if isinstance(query, MPE):
            return QueryPlan(
                query.kind, query.n_rows, (), postprocess="per-row MPE search",
                **stats,
            )
        raise TypeError(f"unknown query type {type(query).__name__}")

    def _plan_stats(self) -> dict:
        """Memory statistics of the executor behind this session's passes."""
        if self.engine != "vectorized":
            return {"tape_slots": 0, "peak_slots": 0}
        from ..spn.compiled import cached_tape

        tape = self.tape if self.tape is not None else cached_tape(self.spn)
        if self.execution.mode == "legacy" or not tape.kernels:
            return {"tape_slots": tape.n_slots, "peak_slots": tape.n_slots}
        plan = tape.memory_plan(
            fuse=self.execution.fuse, fuse_width=self.execution.fuse_width
        )
        return {"tape_slots": tape.n_slots, "peak_slots": plan.n_physical}

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, query: Query):
        """Execute ``query`` and return its batched result.

        Value kinds return a ``(n_rows,)`` float vector; the analysis
        kinds return per-row vectors or matrices (``Expectation`` /
        ``Entropy``: ``(n_rows, k)``, ``MutualInformation``: ``(n_rows,
        k, k)``, ``Classify``: ``(n_rows, n_states)``, ``Sample``:
        ``(n_rows, n_samples, n_vars)`` int64); :class:`MPE` returns a
        list of ``{var: value}`` completions.  Results are bit-identical
        for a row whether it runs alone, inside a larger batch, or through
        the serving layer — the tape kernels are elementwise across rows,
        and :class:`Sample` seeds each row's draws by its row id.
        """
        if not isinstance(query, Query):
            raise TypeError(
                f"expected a typed query (repro.api), got {type(query).__name__}"
            )
        if not TRACER.enabled:
            return self._run(query)
        before = self.evaluations
        with TRACER.span(
            "session.run", kind=query.kind.value, n_rows=query.n_rows
        ) as span:
            result = self._run(query)
            span.set(passes=self.evaluations - before)
            return result

    def _run(self, query: Query):
        if isinstance(query, Conditional):
            log_joint = self._evaluate(self.encode(query.joint), log_domain=True)
            log_evidence = self._evaluate(self.encode(query.evidence), log_domain=True)
            with np.errstate(invalid="ignore"):
                diff = log_joint - log_evidence  # -inf - -inf -> nan (P(e) = 0)
            return diff if query.log else np.exp(diff)
        if isinstance(query, Marginal):
            if query.log or query.normalize:
                values = self._evaluate(self.encode(query.evidence), log_domain=True)
                if query.normalize:
                    values = values - self.log_partition()
                return values if query.log else np.exp(values)
            return self._evaluate(self.encode(query.evidence), log_domain=False)
        if isinstance(query, LogLikelihood):
            return self._evaluate(self.encode(query.evidence), log_domain=True)
        if isinstance(query, Likelihood):
            return self._evaluate(self.encode(query.evidence), log_domain=False)
        if isinstance(query, Classify):
            return self._run_classify(query)
        if isinstance(query, Expectation):
            return self._run_expectation(query)
        if isinstance(query, Entropy):
            return self._run_entropy(query)
        if isinstance(query, MutualInformation):
            return self._run_mutual_information(query)
        if isinstance(query, Sample):
            return self._run_sample(query)
        if isinstance(query, MPE):
            from ..spn.queries import mpe_row

            return [
                mpe_row(self.spn, row_evidence(row), refine=query.refine)
                for row in self.encode(query.evidence)
            ]
        raise TypeError(f"unknown query type {type(query).__name__}")

    # ------------------------------------------------------------------ #
    # Analysis kinds (sampling, moments, entropy, MI, classification)
    # ------------------------------------------------------------------ #
    def domains(self) -> Dict[int, Tuple[int, ...]]:
        """Per-variable value domains read off the model's indicator leaves.

        ``{var: (sorted values)}`` — the state spaces every analysis kind
        sweeps over.  Cached under the same content fingerprint as the
        tape and ``log Z`` caches, so a structurally mutated model
        recomputes instead of sweeping stale states.
        """
        from ..spn.compiled import _fingerprint_parts
        from ..spn.queries import _indicator_domains

        tag, children = _fingerprint_parts(self.spn)
        fingerprint = (tag, tuple(map(id, children)))
        with self._lock:
            if self._domains_fingerprint == fingerprint:
                return self._domains
        domains = {
            var: tuple(sorted(values))
            for var, values in sorted(_indicator_domains(self.spn).items())
        }
        with self._lock:
            # Pin the fingerprinted children (id-reuse guard, as for log Z).
            self._domains = domains
            self._domains_fingerprint = fingerprint
            self._domains_children = children
        return domains

    def _resolve_variables(self, variables, domains) -> Tuple[int, ...]:
        """Validate a query's variable selection (``None`` = every model var)."""
        if variables is None:
            return tuple(sorted(domains))
        for var in variables:
            if var not in domains:
                known = ", ".join(map(str, sorted(domains))) or "none"
                raise ValueError(
                    f"variable {var} is not a model variable (known: {known})"
                )
        return tuple(variables)

    def _state_sweep(self, evidence: np.ndarray, entries) -> np.ndarray:
        """One batched log pass over per-entry variable replacements.

        ``entries`` is a sequence of assignments (tuples of ``(var,
        value)`` pairs); every evidence row is evaluated under every
        assignment in a single tape pass, returned as ``(n_rows,
        len(entries))`` log values.
        """
        n = evidence.shape[0]
        m = len(entries)
        sweep = np.repeat(evidence, m, axis=0)
        for j, assignment in enumerate(entries):
            for var, value in assignment:
                sweep[j::m, var] = value
        return self._evaluate(sweep, log_domain=True).reshape(n, m)

    def _conditional_distributions(self, evidence, variables, domains):
        """Per-row conditionals ``P(X_v = s | e)`` for every requested var.

        Two log passes (the shared state sweep, then the evidence batch).
        Returns ``(cond, entries, log_e)`` where ``cond`` is ``(n_rows,
        sum_v |domain(v)|)`` with the columns in ``entries`` order.
        Observed variables contribute their point mass (the sweep's
        replacement ratio would answer a different question); rows with
        zero-probability evidence are ``nan`` throughout.
        """
        entries = [((v, s),) for v in variables for s in domains[v]]
        log_sweep = self._state_sweep(evidence, entries)
        log_e = self._evaluate(evidence, log_domain=True)
        with np.errstate(invalid="ignore"):
            cond = np.exp(log_sweep - log_e[:, None])
        for j, ((var, value),) in enumerate(entries):
            observed = evidence[:, var] >= 0
            if observed.any():
                cond[observed, j] = (evidence[observed, var] == value)
        cond[log_e == -np.inf] = np.nan
        return cond, entries, log_e

    def _run_classify(self, query: Classify) -> np.ndarray:
        evidence = self.encode(query.evidence)
        domains = self.domains()
        if query.target not in domains:
            known = ", ".join(map(str, sorted(domains))) or "none"
            raise ValueError(
                f"Classify target {query.target} is not a model variable "
                f"(known: {known})"
            )
        states = domains[query.target]
        n, k = evidence.shape[0], len(states)
        joint = np.repeat(evidence, k, axis=0)
        joint[:, query.target] = np.tile(np.asarray(states, dtype=np.int64), n)
        log_joint = self._evaluate(joint, log_domain=True).reshape(n, k)
        log_evidence = self._evaluate(evidence, log_domain=True)
        with np.errstate(invalid="ignore"):
            diff = log_joint - log_evidence[:, None]  # P(e) = 0 rows -> nan
        return diff if query.log else np.exp(diff)

    def _run_expectation(self, query: Expectation) -> np.ndarray:
        evidence = self.encode(query.evidence)
        domains = self.domains()
        variables = self._resolve_variables(query.variables, domains)
        cond, _, _ = self._conditional_distributions(evidence, variables, domains)
        out = np.empty((evidence.shape[0], len(variables)))
        col = 0
        for i, var in enumerate(variables):
            k = len(domains[var])
            probs = cond[:, col:col + k]
            values = np.asarray(domains[var], dtype=np.float64)
            if query.center:
                mean = probs @ values
                out[:, i] = (
                    (values[None, :] - mean[:, None]) ** query.moment * probs
                ).sum(axis=1)
            else:
                out[:, i] = probs @ (values ** query.moment)
            col += k
        return out

    def _run_entropy(self, query: Entropy) -> np.ndarray:
        evidence = self.encode(query.evidence)
        domains = self.domains()
        variables = self._resolve_variables(query.variables, domains)
        cond, _, log_e = self._conditional_distributions(
            evidence, variables, domains
        )
        out = np.empty((evidence.shape[0], len(variables)))
        col = 0
        for i, var in enumerate(variables):
            k = len(domains[var])
            out[:, i] = _entropy_terms(cond[:, col:col + k])
            col += k
        out[log_e == -np.inf] = np.nan
        return out

    def _run_mutual_information(self, query: MutualInformation) -> np.ndarray:
        evidence = self.encode(query.evidence)
        domains = self.domains()
        variables = self._resolve_variables(query.variables, domains)
        n, k = evidence.shape[0], len(variables)
        pair_entries = [
            ((u, a), (v, b))
            for i, u in enumerate(variables)
            for v in variables[i + 1:]
            for a in domains[u]
            for b in domains[v]
        ]
        log_pairs = self._state_sweep(evidence, pair_entries)
        cond, _, log_e = self._conditional_distributions(
            evidence, variables, domains
        )
        with np.errstate(invalid="ignore"):
            pair_probs = np.exp(log_pairs - log_e[:, None])
        offsets: Dict[int, int] = {}
        entropies = np.empty((n, k))
        col = 0
        for i, var in enumerate(variables):
            offsets[var] = col
            entropies[:, i] = _entropy_terms(cond[:, col:col + len(domains[var])])
            col += len(domains[var])
        out = np.zeros((n, k, k))
        pos = 0
        for i, u in enumerate(variables):
            for j in range(i + 1, k):
                v = variables[j]
                ku, kv = len(domains[u]), len(domains[v])
                block = pair_probs[:, pos:pos + ku * kv].reshape(n, ku, kv)
                pu = cond[:, offsets[u]:offsets[u] + ku]
                pv = cond[:, offsets[v]:offsets[v] + kv]
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratio = (
                        np.log(block)
                        - np.log(pu[:, :, None])
                        - np.log(pv[:, None, :])
                    )
                    terms = np.where(block > 0, block * ratio, 0.0)
                value = terms.sum(axis=(1, 2))
                # An observed variable carries no information; the sweep's
                # replacement probabilities answered a different question
                # for those rows, so the entry is zero by convention.
                either_observed = (evidence[:, u] >= 0) | (evidence[:, v] >= 0)
                value = np.where(either_observed, 0.0, value)
                out[:, i, j] = out[:, j, i] = value
                pos += ku * kv
        for i in range(k):
            out[:, i, i] = entropies[:, i]
        if query.normalize:
            denom = np.sqrt(entropies[:, :, None] * entropies[:, None, :])
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.where(denom > 0, out / denom, 0.0)
        out[log_e == -np.inf] = np.nan
        return out

    def _sample_chain(self, evidence: np.ndarray, domains) -> List[int]:
        """The variables a :class:`Sample` batch must draw, in chain order.

        A variable needs a chain pass when it is multi-valued and
        unobserved in at least one row; single-valued domains are forced
        without a pass.  The order is ascending variable id — fixed, so a
        row's draws do not depend on which rows share its batch.
        """
        return [
            var
            for var in sorted(domains)
            if len(domains[var]) > 1 and bool((evidence[:, var] < 0).any())
        ]

    def _run_sample(self, query: Sample) -> np.ndarray:
        evidence = self.encode(query.evidence)
        domains = self.domains()
        n, width = evidence.shape
        n_samples = query.n_samples
        base = evidence.copy()
        for var, values in domains.items():
            if len(values) == 1:
                base[base[:, var] < 0, var] = values[0]
        states = np.repeat(base[:, None, :], n_samples, axis=1)
        chain = self._sample_chain(evidence, domains)
        if not chain or n == 0:
            return states
        # The per-row uniform table depends only on (seed, row id) and is
        # indexed by variable — never by draw order — so a row's samples
        # are bit-identical across batch compositions, execution modes and
        # serving micro-batches.
        uniforms = np.stack([
            np.random.default_rng([query.seed, int(rid)]).random(
                (n_samples, self.n_vars)
            )
            for rid in query.row_ids
        ])
        for var in chain:
            values = np.asarray(domains[var], dtype=np.int64)
            k = len(values)
            rows = np.nonzero(evidence[:, var] < 0)[0]
            m = len(rows)
            current = states[rows].reshape(m * n_samples, width)
            batch = np.repeat(current, k, axis=0)
            batch[:, var] = np.tile(values, m * n_samples)
            logs = self._evaluate(batch, log_domain=True).reshape(m, n_samples, k)
            peak = logs.max(axis=-1, keepdims=True)
            dead = ~np.isfinite(peak)
            if dead.any():
                row = int(query.row_ids[rows[int(np.argwhere(dead)[0, 0])]])
                raise ValueError(
                    f"evidence row {row} has probability zero under the "
                    "model; there is no conditional to sample from"
                )
            probs = np.exp(logs - peak)
            cum = np.cumsum(probs, axis=-1)
            cum /= cum[..., -1:]
            cum[..., -1] = 1.0  # guard against round-off at the top state
            draws = uniforms[rows][:, :, var]
            choice = (cum > draws[..., None]).argmax(axis=-1)
            block = states[rows]
            block[:, :, var] = values[choice]
            states[rows] = block
        return states

    def _evaluate(self, data: np.ndarray, log_domain: bool) -> np.ndarray:
        """One batched tape pass (the unit the evaluation hook observes)."""
        domain = "log" if log_domain else "linear"
        with self._lock:
            self.evaluations += 1
        if self.on_evaluate is not None:
            self.on_evaluate(domain, data.shape[0])
        with TRACER.span("session.tape_pass", domain=domain, n_rows=data.shape[0]):
            if log_domain:
                return evaluate_log_batch(
                    self.spn, data, engine=self.engine, check=self.check,
                    execution=self.execution,
                )
            return evaluate_batch(
                self.spn, data, engine=self.engine, check=self.check,
                execution=self.execution,
            )

    def log_partition(self) -> float:
        """Log partition function ``log Z``, computed once per session.

        The cache is guarded by the same cheap content fingerprint the tape
        cache uses, so a structurally mutated model recomputes instead of
        serving a stale normalizer.
        """
        from ..spn.compiled import _fingerprint_parts

        tag, children = _fingerprint_parts(self.spn)
        fingerprint = (tag, tuple(map(id, children)))
        with self._lock:
            cached = (
                self._log_z if self._log_z_fingerprint == fingerprint else None
            )
        if cached is not None:
            return cached
        row = np.full((1, max(self.n_vars, 1)), -1, dtype=np.int64)
        log_z = float(self._evaluate(row, log_domain=True)[0])
        with self._lock:
            # Pin the fingerprinted children so a collected node's id can
            # never be reused while this entry is considered fresh.
            self._log_z = log_z
            self._log_z_fingerprint = fingerprint
            self._log_z_children = children
        return log_z

    # ------------------------------------------------------------------ #
    # Platform throughput (the paper's ops/cycle metric)
    # ------------------------------------------------------------------ #
    def operation_list(self) -> OperationList:
        """The bound model's lowered operation list (cached per session)."""
        if self._ops is None:
            if self.name is not None:
                from ..suite.registry import benchmark_operation_list

                self._ops = benchmark_operation_list(self.name)
            else:
                self._ops = linearize(self.spn)
        return self._ops

    def throughput(self, platform, options=None):
        """Measure the bound model on a platform engine: ops/cycle.

        ``platform`` is a registry name (:func:`repro.platforms.get_engine`)
        or an already-configured :class:`~repro.platforms.PlatformEngine`
        instance (how the thread-count and ablation sweeps pass
        re-parameterized engines).  Returns the engine's
        :class:`~repro.analysis.metrics.PlatformResult`.
        """
        from ..platforms import get_engine

        engine = get_engine(platform) if isinstance(platform, str) else platform
        return engine.run(
            self.operation_list(), benchmark=self.name or "", options=options
        )


# --------------------------------------------------------------------------- #
# Per-model session cache (backs the scalar wrappers)
# --------------------------------------------------------------------------- #
#: (id(spn), engine, execution options) -> session, LRU-bounded.  The
#: session strongly
#: references its model (so a cached entry can never suffer id reuse), which
#: also means weakref-based eviction could never fire — the bound is what
#: keeps a model-churning caller (e.g. structure search scoring thousands of
#: candidate SPNs through the scalar wrappers) from leaking sessions.
_SESSION_CACHE: "OrderedDict[Tuple[int, str, ExecutionOptions], InferenceSession]" = (
    OrderedDict()
)
_SESSION_CACHE_CAPACITY = 32


def session_for(
    model: Union[SPN, str],
    engine: str = "vectorized",
    execution: Union[ExecutionOptions, str, None] = None,
) -> InferenceSession:
    """A shared session for ``model`` (the scalar wrappers route through this).

    Sessions hold only caches (tape pin, ``log Z``, operation list) — all
    invalidation-safe or recomputed cheaply — so sharing one per
    ``(model, engine, execution)`` makes the deprecated scalar functions as
    cheap as their pre-session implementations while guaranteeing they
    execute the very same code path as batched callers.  The cache is a
    small LRU (:data:`_SESSION_CACHE_CAPACITY` entries); suite-name models
    share the registry's unbounded (nine-benchmark) cache instead.
    """
    options = resolve_execution(execution)
    if isinstance(model, str):
        from ..suite.registry import benchmark_session

        return benchmark_session(model, engine, execution=options)
    key = (id(model), engine, options)
    session = _SESSION_CACHE.get(key)
    # The strong reference inside the cached session guarantees `model`'s id
    # cannot have been reused while the entry exists — but guard on identity
    # anyway, since it is free and makes the invariant local.
    if session is not None and session.spn is model:
        _SESSION_CACHE.move_to_end(key)
        return session
    session = InferenceSession(model, engine=engine, execution=options)
    _SESSION_CACHE[key] = session
    while len(_SESSION_CACHE) > _SESSION_CACHE_CAPACITY:
        _SESSION_CACHE.popitem(last=False)
    return session
