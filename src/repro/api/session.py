"""The inference session: one front door for every query, engine and platform.

:class:`InferenceSession` binds a model — an :class:`~repro.spn.graph.SPN`
object or a suite-registry benchmark name — to an execution engine
(``"vectorized"`` tape or ``"python"`` reference walk) and answers every
typed query of :mod:`repro.api.queries` through the same batched dispatch:

* :meth:`plan` turns a query into its :class:`QueryPlan` — the minimal set
  of vectorized tape evaluations (a :class:`~repro.api.queries.Conditional`
  batch is exactly **two** log-domain passes: joint and evidence,
  subtracted — never a per-row python walk);
* :meth:`run` executes that plan with the existing cached-tape machinery
  (:func:`repro.spn.compiled.cached_tape`) and optional ``check=True``
  engine cross-checking;
* :meth:`throughput` measures the bound model on any registered *platform*
  engine (:mod:`repro.platforms`) — the paper's ops/cycle metric — so the
  experiments issue queries and throughput probes through one object.

Every evaluation pass is observable: the session counts tape evaluations
(:attr:`InferenceSession.evaluations`) and calls an optional
:attr:`on_evaluate` hook, which is how the tests assert the planning
guarantees (e.g. two passes per conditional batch, not ``2 * n_rows``).

Sessions are cheap — the heavy artifacts (SPN, tape, operation list,
partition function) are cached per model — and single-row sessions back the
deprecated scalar wrappers in :mod:`repro.spn.queries`, so the scalar and
batched paths cannot drift.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..spn.compiled import resolve_engine
from ..spn.evaluate import evaluate_batch, evaluate_log_batch, row_evidence
from ..spn.memplan import ExecutionOptions, resolve_execution
from ..spn.graph import SPN
from ..spn.linearize import OperationList, linearize
from ..spn.nodes import IndicatorLeaf
from .queries import (
    MPE,
    Conditional,
    Likelihood,
    LogLikelihood,
    Marginal,
    Query,
    QueryKind,
    evidence_rows,
)

__all__ = ["EvalPass", "QueryPlan", "InferenceSession", "session_for"]


@dataclass(frozen=True)
class EvalPass:
    """One planned tape evaluation: its domain and what it evaluates."""

    domain: str  # "linear" | "log"
    operand: str  # "evidence" | "joint" | "partition"
    cached: bool = False  # True: served from the session cache when warm


@dataclass(frozen=True)
class QueryPlan:
    """The evaluation recipe for one query batch.

    ``passes`` lists the tape evaluations in execution order;
    ``postprocess`` names the elementwise combination applied afterwards.
    ``n_evaluations`` is the number of *uncached* batched tape passes the
    plan performs — the quantity the evaluation-count hook observes.

    ``tape_slots``/``peak_slots`` are the memory-plan statistics of the
    session's executor (:class:`~repro.spn.memplan.MemoryPlan`): the dense
    slot count of the compiled tape and the physical working-set rows each
    pass actually keeps resident (zero for the python reference engine,
    which has no tape).  ``peak_bytes_per_row`` is the executor's peak
    slot-buffer footprint per evidence row.
    """

    kind: QueryKind
    n_rows: int
    passes: Tuple[EvalPass, ...]
    postprocess: str = ""
    tape_slots: int = 0
    peak_slots: int = 0

    @property
    def n_evaluations(self) -> int:
        return sum(1 for p in self.passes if not p.cached)

    @property
    def peak_bytes_per_row(self) -> int:
        return self.peak_slots * 8


class InferenceSession:
    """Bind one model to one engine and answer every typed query through it.

    Parameters
    ----------
    model:
        An :class:`~repro.spn.graph.SPN` or a suite-registry benchmark name
        (resolved via :func:`repro.suite.registry.build_benchmark`).
    engine:
        Functional execution engine for the tape passes, as accepted by
        :func:`repro.spn.evaluate.evaluate_batch` (``"vectorized"``
        default; ``"python"`` for the reference walk).
    check:
        Cross-check every vectorized pass against the reference engine on a
        batch prefix (:class:`~repro.spn.compiled.EngineMismatchError` on
        disagreement).
    warm:
        Compile and pin the model's tape at construction instead of on the
        first query (keeps compilation latency out of the serving path).
    execution:
        Executor for the vectorized tape passes — an
        :class:`~repro.spn.memplan.ExecutionOptions` or a bare mode string
        (``"planned"`` default, ``"sharded"``, ``"legacy"``).  All modes
        are bit-identical; the knob chooses memory layout and shard
        parallelism, and :meth:`plan` reports the resulting working set.
    """

    def __init__(
        self,
        model: Union[SPN, str],
        engine: str = "vectorized",
        check: bool = False,
        warm: bool = False,
        execution: Union[ExecutionOptions, str, None] = None,
    ) -> None:
        if isinstance(model, str):
            from ..suite.registry import benchmark_n_vars, build_benchmark

            self.name: Optional[str] = model
            self.spn: SPN = build_benchmark(model)
            self.n_vars: int = benchmark_n_vars(model)
        else:
            self.name = None
            self.spn = model
            self.n_vars = (
                max(
                    (n.var for n in model.nodes() if isinstance(n, IndicatorLeaf)),
                    default=-1,
                )
                + 1
            )
        self.engine = resolve_engine(engine)
        self.check = check
        self.execution = resolve_execution(execution)
        # Guards the evaluation counter and the lazy caches: sessions are
        # shared by serving worker pools (n_workers > 1).
        self._lock = threading.Lock()
        #: Batched tape evaluations performed so far (the plan-count hook).
        self.evaluations: int = 0
        #: Optional callback ``(domain, n_rows)`` invoked per tape pass.
        self.on_evaluate: Optional[Callable[[str, int], None]] = None
        self._log_z: Optional[float] = None
        self._log_z_fingerprint: Optional[tuple] = None
        self._ops: Optional[OperationList] = None
        self.tape = None
        if warm and self.engine == "vectorized":
            from ..spn.compiled import cached_tape

            self.tape = cached_tape(self.spn)

    # ------------------------------------------------------------------ #
    # Evidence handling
    # ------------------------------------------------------------------ #
    def encode(self, evidence) -> np.ndarray:
        """Normalize evidence to a 2-D batch at least ``n_vars`` wide.

        Wider rows are kept — no indicator reads the surplus columns
        (exact for value queries), and out-of-range observed entries
        survive into MPE completions.  Fixed-width policies on top of this
        (rejecting observed surplus entries, trimming to the model width)
        belong to the serving layer's admission
        (:meth:`repro.serving.server.InferenceServer._encode`).
        """
        return evidence_rows(evidence, self.n_vars)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, query: Query) -> QueryPlan:
        """The minimal evaluation recipe for ``query`` (no execution).

        Planning rules:

        * ``Likelihood`` — one linear pass over the evidence batch.
        * ``LogLikelihood`` — one log pass.
        * ``Marginal`` — one log pass (log or normalized output; the
          normalizing partition pass is cached per session) or one linear
          pass (the raw linear case).
        * ``Conditional`` — exactly **two** log passes, joint and evidence,
          combined elementwise; never a per-row walk, and never more than
          two passes regardless of the batch size.
        * ``MPE`` — a per-row search whose candidate scoring batches
          through the log tape internally (pass count depends on the
          network, so it is not enumerated here).

        Every plan also carries the executor's memory statistics
        (``tape_slots``, ``peak_slots``): the compiled tape's dense slot
        count and the physical rows the session's execution mode actually
        keeps resident per pass.
        """
        stats = self._plan_stats()
        if isinstance(query, Conditional):
            return QueryPlan(
                kind=query.kind,
                n_rows=query.n_rows,
                passes=(EvalPass("log", "joint"), EvalPass("log", "evidence")),
                postprocess="subtract" if query.log else "exp(subtract)",
                **stats,
            )
        if isinstance(query, Marginal):
            passes: List[EvalPass] = []
            if query.log or query.normalize:
                passes.append(EvalPass("log", "evidence"))
            else:
                passes.append(EvalPass("linear", "evidence"))
            if query.normalize:
                passes.append(
                    EvalPass("log", "partition", cached=self._log_z is not None)
                )
            post = ""
            if query.normalize:
                post = "subtract log Z" if query.log else "exp(subtract log Z)"
            return QueryPlan(query.kind, query.n_rows, tuple(passes), post, **stats)
        if isinstance(query, LogLikelihood):
            return QueryPlan(
                query.kind, query.n_rows, (EvalPass("log", "evidence"),), **stats
            )
        if isinstance(query, Likelihood):
            return QueryPlan(
                query.kind, query.n_rows, (EvalPass("linear", "evidence"),), **stats
            )
        if isinstance(query, MPE):
            return QueryPlan(
                query.kind, query.n_rows, (), postprocess="per-row MPE search",
                **stats,
            )
        raise TypeError(f"unknown query type {type(query).__name__}")

    def _plan_stats(self) -> dict:
        """Memory statistics of the executor behind this session's passes."""
        if self.engine != "vectorized":
            return {"tape_slots": 0, "peak_slots": 0}
        from ..spn.compiled import cached_tape

        tape = self.tape if self.tape is not None else cached_tape(self.spn)
        if self.execution.mode == "legacy" or not tape.kernels:
            return {"tape_slots": tape.n_slots, "peak_slots": tape.n_slots}
        plan = tape.memory_plan(
            fuse=self.execution.fuse, fuse_width=self.execution.fuse_width
        )
        return {"tape_slots": tape.n_slots, "peak_slots": plan.n_physical}

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, query: Query):
        """Execute ``query`` and return its batched result.

        Value kinds return a ``(n_rows,)`` float vector; :class:`MPE`
        returns a list of ``{var: value}`` completions.  Results are
        bit-identical for a row whether it runs alone, inside a larger
        batch, or through the serving layer — the tape kernels are
        elementwise across rows.
        """
        if not isinstance(query, Query):
            raise TypeError(
                f"expected a typed query (repro.api), got {type(query).__name__}"
            )
        if isinstance(query, Conditional):
            log_joint = self._evaluate(self.encode(query.joint), log_domain=True)
            log_evidence = self._evaluate(self.encode(query.evidence), log_domain=True)
            with np.errstate(invalid="ignore"):
                diff = log_joint - log_evidence  # -inf - -inf -> nan (P(e) = 0)
            return diff if query.log else np.exp(diff)
        if isinstance(query, Marginal):
            if query.log or query.normalize:
                values = self._evaluate(self.encode(query.evidence), log_domain=True)
                if query.normalize:
                    values = values - self.log_partition()
                return values if query.log else np.exp(values)
            return self._evaluate(self.encode(query.evidence), log_domain=False)
        if isinstance(query, LogLikelihood):
            return self._evaluate(self.encode(query.evidence), log_domain=True)
        if isinstance(query, Likelihood):
            return self._evaluate(self.encode(query.evidence), log_domain=False)
        if isinstance(query, MPE):
            from ..spn.queries import mpe_row

            return [
                mpe_row(self.spn, row_evidence(row), refine=query.refine)
                for row in self.encode(query.evidence)
            ]
        raise TypeError(f"unknown query type {type(query).__name__}")

    def _evaluate(self, data: np.ndarray, log_domain: bool) -> np.ndarray:
        """One batched tape pass (the unit the evaluation hook observes)."""
        with self._lock:
            self.evaluations += 1
        if self.on_evaluate is not None:
            self.on_evaluate("log" if log_domain else "linear", data.shape[0])
        if log_domain:
            return evaluate_log_batch(
                self.spn, data, engine=self.engine, check=self.check,
                execution=self.execution,
            )
        return evaluate_batch(
            self.spn, data, engine=self.engine, check=self.check,
            execution=self.execution,
        )

    def log_partition(self) -> float:
        """Log partition function ``log Z``, computed once per session.

        The cache is guarded by the same cheap content fingerprint the tape
        cache uses, so a structurally mutated model recomputes instead of
        serving a stale normalizer.
        """
        from ..spn.compiled import _fingerprint_parts

        tag, children = _fingerprint_parts(self.spn)
        fingerprint = (tag, tuple(map(id, children)))
        with self._lock:
            cached = (
                self._log_z if self._log_z_fingerprint == fingerprint else None
            )
        if cached is not None:
            return cached
        row = np.full((1, max(self.n_vars, 1)), -1, dtype=np.int64)
        log_z = float(self._evaluate(row, log_domain=True)[0])
        with self._lock:
            # Pin the fingerprinted children so a collected node's id can
            # never be reused while this entry is considered fresh.
            self._log_z = log_z
            self._log_z_fingerprint = fingerprint
            self._log_z_children = children
        return log_z

    # ------------------------------------------------------------------ #
    # Platform throughput (the paper's ops/cycle metric)
    # ------------------------------------------------------------------ #
    def operation_list(self) -> OperationList:
        """The bound model's lowered operation list (cached per session)."""
        if self._ops is None:
            if self.name is not None:
                from ..suite.registry import benchmark_operation_list

                self._ops = benchmark_operation_list(self.name)
            else:
                self._ops = linearize(self.spn)
        return self._ops

    def throughput(self, platform, options=None):
        """Measure the bound model on a platform engine: ops/cycle.

        ``platform`` is a registry name (:func:`repro.platforms.get_engine`)
        or an already-configured :class:`~repro.platforms.PlatformEngine`
        instance (how the thread-count and ablation sweeps pass
        re-parameterized engines).  Returns the engine's
        :class:`~repro.analysis.metrics.PlatformResult`.
        """
        from ..platforms import get_engine

        engine = get_engine(platform) if isinstance(platform, str) else platform
        return engine.run(
            self.operation_list(), benchmark=self.name or "", options=options
        )


# --------------------------------------------------------------------------- #
# Per-model session cache (backs the scalar wrappers)
# --------------------------------------------------------------------------- #
#: (id(spn), engine, execution options) -> session, LRU-bounded.  The
#: session strongly
#: references its model (so a cached entry can never suffer id reuse), which
#: also means weakref-based eviction could never fire — the bound is what
#: keeps a model-churning caller (e.g. structure search scoring thousands of
#: candidate SPNs through the scalar wrappers) from leaking sessions.
_SESSION_CACHE: "OrderedDict[Tuple[int, str, ExecutionOptions], InferenceSession]" = (
    OrderedDict()
)
_SESSION_CACHE_CAPACITY = 32


def session_for(
    model: Union[SPN, str],
    engine: str = "vectorized",
    execution: Union[ExecutionOptions, str, None] = None,
) -> InferenceSession:
    """A shared session for ``model`` (the scalar wrappers route through this).

    Sessions hold only caches (tape pin, ``log Z``, operation list) — all
    invalidation-safe or recomputed cheaply — so sharing one per
    ``(model, engine, execution)`` makes the deprecated scalar functions as
    cheap as their pre-session implementations while guaranteeing they
    execute the very same code path as batched callers.  The cache is a
    small LRU (:data:`_SESSION_CACHE_CAPACITY` entries); suite-name models
    share the registry's unbounded (nine-benchmark) cache instead.
    """
    options = resolve_execution(execution)
    if isinstance(model, str):
        from ..suite.registry import benchmark_session

        return benchmark_session(model, engine, execution=options)
    key = (id(model), engine, options)
    session = _SESSION_CACHE.get(key)
    # The strong reference inside the cached session guarantees `model`'s id
    # cannot have been reused while the entry exists — but guard on identity
    # anyway, since it is free and makes the invariant local.
    if session is not None and session.spn is model:
        _SESSION_CACHE.move_to_end(key)
        return session
    session = InferenceSession(model, engine=engine, execution=options)
    _SESSION_CACHE[key] = session
    while len(_SESSION_CACHE) > _SESSION_CACHE_CAPACITY:
        _SESSION_CACHE.popitem(last=False)
    return session
