"""Typed probabilistic queries: the objects every caller issues.

The paper's central observation is that diverse probabilistic queries —
marginals, conditionals, MPE — all reduce to (few) bottom-up evaluations of
the same network, which is exactly the kernel every engine in this
repository accelerates.  This module gives that observation an API: each
query *kind* is a small frozen dataclass carrying batched evidence arrays
(the canonical :data:`repro.spn.evaluate.MARGINALIZED` convention), and an
:class:`~repro.api.session.InferenceSession` plans any of them into the
minimal set of vectorized tape evaluations.

Ten kinds, one hierarchy::

    Likelihood(evidence)                    # linear root values, 1 pass
    LogLikelihood(evidence)                 # log root values,    1 pass
    Marginal(evidence, log, normalize)      # (log-)marginal, optionally / Z
    Conditional(query=q, evidence=e, log=l) # P(q | e): exactly 2 log passes
    MPE(evidence, refine)                   # per-row most probable completion
    Sample(evidence, n_samples, seed)       # seeded conditional sampling
    Expectation(evidence, variables,        # conditional moments per variable
                moment, center)
    Entropy(evidence, variables)            # conditional entropy per variable
    MutualInformation(evidence, variables,  # pairwise (normalized) MI matrix
                      normalize)
    Classify(evidence, target, log)         # posterior over a target's states

Queries are *data*: they validate at construction (conflicting assignments,
bad dtypes and unknown kinds fail immediately, not deep inside a worker
pool), they serialize losslessly (:meth:`Query.to_payload` /
:func:`deserialize_query` — evidence is integral, so the JSON round-trip is
bit-identical), and the serving layer transports them unchanged, which is
what makes batched ``Marginal`` and ``Conditional`` servable.

:class:`QueryKind` is the one shared kind vocabulary.  It subclasses
``str``, so the serving layer's historical ``"likelihood"`` /
``"log_likelihood"`` / ``"mpe"`` strings keep comparing equal — but an
unknown kind now fails at construction (:func:`as_kind`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..spn.evaluate import MARGINALIZED, as_evidence_array

__all__ = [
    "QueryKind",
    "QUERY_KINDS",
    "as_kind",
    "Query",
    "Likelihood",
    "LogLikelihood",
    "Marginal",
    "Conditional",
    "MPE",
    "Sample",
    "Expectation",
    "Entropy",
    "MutualInformation",
    "Classify",
    "evidence_rows",
    "query_type",
    "serialize_query",
    "deserialize_query",
]


class QueryKind(str, enum.Enum):
    """The ten query kinds of the unified API (one shared vocabulary).

    Subclasses ``str`` so members compare equal to the historical raw kind
    strings (``KIND_LIKELIHOOD == "likelihood"``), but construction of an
    unknown kind raises immediately — the serving layer and every dispatch
    table use this enum instead of duplicating string literals.
    """

    LIKELIHOOD = "likelihood"
    LOG_LIKELIHOOD = "log_likelihood"
    MARGINAL = "marginal"
    CONDITIONAL = "conditional"
    MPE = "mpe"
    SAMPLE = "sample"
    EXPECTATION = "expectation"
    ENTROPY = "entropy"
    MUTUAL_INFORMATION = "mutual_information"
    CLASSIFY = "classify"


#: All query kinds, in declaration order.
QUERY_KINDS: Tuple[QueryKind, ...] = tuple(QueryKind)


def as_kind(kind: Union[str, QueryKind]) -> QueryKind:
    """Coerce a kind name to :class:`QueryKind`, failing at construction time.

    This is the single validation point for stringly-typed callers (the
    serving admission path, payload deserialization): an unknown kind
    raises ``ValueError`` here, never deep in a worker pool.
    """
    try:
        return QueryKind(kind)
    except ValueError:
        known = ", ".join(repr(k.value) for k in QueryKind)
        raise ValueError(
            f"unknown query kind {kind!r}; expected one of {known}"
        ) from None


def evidence_rows(evidence, n_vars: Optional[int] = None) -> np.ndarray:
    """Normalize any accepted evidence form to a 2-D int64 batch.

    Accepts a ``{var: value}`` mapping, a single evidence row, or a 2-D
    batch (the :data:`~repro.spn.evaluate.MARGINALIZED` convention; dtypes
    validated by :func:`~repro.spn.evaluate.as_evidence_array`).  Mappings
    are laid out with width ``max(n_vars, max variable + 1)``; arrays
    narrower than ``n_vars`` are padded with the sentinel (exact — absent
    columns are unobserved), wider arrays are kept as-is.
    """
    width = int(n_vars or 0)
    if isinstance(evidence, Mapping):
        if evidence:
            variables = as_evidence_array(np.asarray(list(evidence.keys())))
            values = as_evidence_array(np.asarray(list(evidence.values())))
            if (variables < 0).any():
                raise ValueError(
                    f"evidence variable {int(variables[variables < 0][0])} is negative"
                )
            width = max(width, int(variables.max()) + 1)
        row = np.full((1, max(width, 1)), MARGINALIZED, dtype=np.int64)
        if evidence:
            row[0, variables] = values
        return row
    rows = as_evidence_array(evidence)
    if rows.ndim == 1:
        rows = rows[None, :]
    if rows.ndim != 2:
        raise ValueError(
            f"expected a mapping, row or 2-D batch, got shape {rows.shape}"
        )
    rows = rows.astype(np.int64, copy=False)
    if rows.shape[1] < width:
        padded = np.full((rows.shape[0], width), MARGINALIZED, dtype=np.int64)
        padded[:, : rows.shape[1]] = rows
        return padded
    return rows


def _variables_tuple(variables) -> Optional[Tuple[int, ...]]:
    """Coerce a variable selection to a validated tuple (``None`` = all).

    Order is preserved — it is the column order of the result — and
    duplicates or negative ids are rejected at construction.
    """
    if variables is None:
        return None
    result = tuple(int(v) for v in variables)
    if any(v < 0 for v in result):
        raise ValueError(f"variables must be non-negative, got {result}")
    if len(set(result)) != len(result):
        raise ValueError(f"variables contain duplicates: {result}")
    return result


@dataclass(frozen=True, eq=False)
class Query:
    """Base of the typed query hierarchy: one batched evidence array.

    ``evidence`` accepts a mapping, a single row, or a 2-D batch and is
    normalized to a 2-D int64 array at construction (see
    :func:`evidence_rows`).  Subclasses add their kind-specific parameters;
    everything needed to *execute* the query is part of the object, so a
    serialized query replayed anywhere produces bit-identical results.
    """

    evidence: np.ndarray

    #: The kind tag, set per subclass (also the serialization discriminator).
    kind: ClassVar[QueryKind]

    def __post_init__(self) -> None:
        object.__setattr__(self, "evidence", evidence_rows(self.evidence))

    # Value semantics, ndarray-aware: the dataclass-generated __eq__ would
    # crash on multi-row arrays ("truth value of an array is ambiguous"),
    # so equality is defined here (eq=False on every subclass) and hashing
    # stays identity-based — arrays are mutable buffers.
    def __eq__(self, other: object):
        if type(other) is not type(self):
            return NotImplemented
        if self.params() != other.params():
            return False
        if not np.array_equal(self.evidence, other.evidence):
            return False
        for name in ("query", "row_ids"):
            mine, theirs = getattr(self, name, None), getattr(other, name, None)
            if mine is None:
                if theirs is not None:
                    return False
            elif not np.array_equal(mine, theirs):
                return False
        return True

    __hash__ = object.__hash__

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return int(self.evidence.shape[0])

    @property
    def n_cols(self) -> int:
        return int(self.evidence.shape[1])

    # ------------------------------------------------------------------ #
    # Parameters and grouping
    # ------------------------------------------------------------------ #
    def params(self) -> Dict[str, object]:
        """The kind-specific execution parameters (everything but the arrays).

        ``row_ids`` (the per-row sampling identities of :class:`Sample`) is
        array data, not an execution parameter: it is excluded so the
        serving layer's :meth:`group_key` co-batching stays row-scatter
        safe.
        """
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("evidence", "query", "row_ids")
        }

    def group_key(self) -> tuple:
        """Hashable execution identity: kind plus every parameter.

        Rows from two queries may be co-batched by the serving layer only
        when their group keys are equal — the key carries every flag that
        changes execution, so coalescing can never change a result.
        """
        return (self.kind,) + tuple(sorted(self.params().items()))

    # ------------------------------------------------------------------ #
    # Row-level decomposition (the serving layer's unit of coalescing)
    # ------------------------------------------------------------------ #
    def split_rows(self) -> List[np.ndarray]:
        """This query's rows as independent single-row payloads."""
        return [self.evidence[i] for i in range(self.n_rows)]

    @classmethod
    def join_rows(cls, rows: Sequence[np.ndarray], **params) -> "Query":
        """Rebuild a batched query from row payloads (inverse of split)."""
        return cls(evidence=np.stack(rows) if len(rows) else
                   np.zeros((0, 1), dtype=np.int64), **params)

    @classmethod
    def assemble_rows(cls, results: Sequence[object]):
        """Combine per-row results back into this kind's batched result.

        The inverse of ``list(session.run(query))`` on the serving side:
        value kinds stack their per-row float results (scalars or vectors)
        into one float64 array; :class:`MPE` and :class:`Sample` override
        this to keep their list / int64-array result types.
        """
        return np.asarray(list(results), dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict; evidence is integral so the round-trip is exact.

        The explicit ``shape`` entry keeps zero-row batches lossless: a
        ``(0, n)`` array serializes to ``[]``, which alone could not be
        told apart from a ``(1, 0)`` row on the way back.
        """
        payload: Dict[str, object] = {
            "kind": self.kind.value,
            "evidence": self.evidence.tolist(),
            "shape": list(self.evidence.shape),
        }
        payload.update(self.params())
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Query":
        data = dict(payload)
        data.pop("kind", None)
        shape = data.pop("shape", None)
        for key in ("evidence", "query"):
            if key in data and data[key] is not None:
                array = np.asarray(data[key], dtype=np.int64)
                if shape is not None:
                    array = array.reshape(tuple(shape))
                data[key] = array
        return cls(**data)


@dataclass(frozen=True, eq=False)
class Likelihood(Query):
    """Linear-domain root value of each evidence row: one tape pass.

    For normalized networks this is exactly :math:`P(e)`; in general it is
    the (unnormalized) network value — identical to what the batched
    engines (:func:`repro.spn.evaluate.evaluate_batch`) return.
    """

    kind: ClassVar[QueryKind] = QueryKind.LIKELIHOOD


@dataclass(frozen=True, eq=False)
class LogLikelihood(Query):
    """Log-domain root value of each evidence row: one log tape pass.

    Numerically robust for deep networks whose linear values underflow;
    zero-probability rows return ``-inf``.
    """

    kind: ClassVar[QueryKind] = QueryKind.LOG_LIKELIHOOD


@dataclass(frozen=True, eq=False)
class Marginal(Query):
    """(Log-)marginal probability of each evidence row, optionally normalized.

    The generalization of :class:`Likelihood` / :class:`LogLikelihood`:
    ``log`` selects the output domain and ``normalize`` divides by the
    partition function :math:`Z` (subtracts :math:`\\log Z`), so the result
    is a proper probability even for unnormalized networks.  Plans to one
    tape pass, plus one session-cached partition pass when normalizing.
    Normalized linear marginals are computed as
    ``exp(log-marginal - log Z)`` — underflow-safe for deep networks.
    """

    kind: ClassVar[QueryKind] = QueryKind.MARGINAL
    log: bool = False
    normalize: bool = False


@dataclass(frozen=True, eq=False, kw_only=True)
class Conditional(Query):
    """Batched conditional :math:`P(q \\mid e)`: exactly two log tape passes.

    Constructed with **keyword arguments** —
    ``Conditional(query=..., evidence=..., log=...)`` — enforced by
    ``kw_only`` so the two assignments can never be swapped positionally
    (a silent inversion of the conditional).  ``query`` and ``evidence``
    are evidence batches of equal row count
    (mappings and single rows normalize like everywhere else); observed
    entries of ``query`` are the queried assignment, observed entries of
    ``evidence`` the conditioning assignment.  Execution is entirely in the
    log domain — ``exp(log P(q, e) - log P(e))`` — so conditionals of deep
    networks whose joint probabilities underflow linearly are still exact;
    rows whose *evidence* has probability zero yield ``nan`` (the scalar
    wrapper :func:`repro.spn.queries.conditional` turns that into the
    historical ``ZeroDivisionError``).  With ``log=True`` the log-ratio is
    returned instead.

    Conflicting assignments (both arrays observing the same variable with
    different values) are rejected at construction.
    """

    kind: ClassVar[QueryKind] = QueryKind.CONDITIONAL
    query: np.ndarray = field(default=None)
    log: bool = False

    def __post_init__(self) -> None:
        if self.query is None:
            raise ValueError("Conditional requires a query assignment")
        evidence = evidence_rows(self.evidence)
        query = evidence_rows(self.query)
        if query.shape[0] != evidence.shape[0]:
            raise ValueError(
                f"query and evidence row counts differ: "
                f"{query.shape[0]} vs {evidence.shape[0]}"
            )
        width = max(query.shape[1], evidence.shape[1])
        query = evidence_rows(query, width)
        evidence = evidence_rows(evidence, width)
        conflict = (query >= 0) & (evidence >= 0) & (query != evidence)
        if conflict.any():
            row, var = map(int, np.argwhere(conflict)[0])
            raise ValueError(
                f"query and evidence disagree on variable {var} (row {row})"
            )
        object.__setattr__(self, "evidence", evidence)
        object.__setattr__(self, "query", query)

    @property
    def joint(self) -> np.ndarray:
        """The merged (query ∪ evidence) batch — the plan's first pass."""
        return np.where(self.query >= 0, self.query, self.evidence)

    def split_rows(self) -> List[np.ndarray]:
        # Each row payload stacks (query row, evidence row) so the serving
        # layer can scatter rows across micro-batches and reassemble.
        return [
            np.stack([self.query[i], self.evidence[i]]) for i in range(self.n_rows)
        ]

    @classmethod
    def join_rows(cls, rows: Sequence[np.ndarray], **params) -> "Conditional":
        if not len(rows):
            empty = np.zeros((0, 1), dtype=np.int64)
            return cls(evidence=empty, query=empty, **params)
        stacked = np.stack(rows)  # (n_rows, 2, n_vars)
        return cls(evidence=stacked[:, 1], query=stacked[:, 0], **params)

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["query"] = self.query.tolist()
        return payload


@dataclass(frozen=True, eq=False)
class MPE(Query):
    """Most probable completion of each evidence row.

    Returns one ``{var: value}`` assignment per row (exact by enumeration
    for small free state spaces, max-product with optional coordinate-ascent
    ``refine`` otherwise — the engine of
    :func:`repro.spn.queries.most_probable_explanation`, which itself runs
    its candidate scoring through the vectorized log-domain tape).
    """

    kind: ClassVar[QueryKind] = QueryKind.MPE
    refine: bool = True

    @classmethod
    def assemble_rows(cls, results: Sequence[object]):
        return list(results)


@dataclass(frozen=True, eq=False)
class Sample(Query):
    """Seeded conditional samples: ``n_samples`` completions of each row.

    Each evidence row's unobserved variables are drawn from the network's
    conditional distribution given the observed ones, by exact chain-rule
    (ancestral) sampling over batched log tape passes — one pass per free
    variable, shared by the whole batch, never a per-row walk.  The result
    is an ``(n_rows, n_samples, n_vars)`` int64 array whose observed
    columns echo the evidence.

    Determinism is a contract, not an accident: the random draw for a row
    depends only on ``(seed, row id, variable)`` — ``row_ids`` defaults to
    the row's position in the batch — so the same seed returns bit-identical
    samples whether a row runs alone, inside a larger batch, through any
    execution mode, or scattered across serving micro-batches.  Rows whose
    evidence has probability zero raise ``ValueError`` (there is no
    conditional to sample from).
    """

    kind: ClassVar[QueryKind] = QueryKind.SAMPLE
    n_samples: int = 1
    seed: int = 0
    row_ids: np.ndarray = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if int(self.n_samples) < 1:
            raise ValueError(f"n_samples must be >= 1, got {self.n_samples}")
        if int(self.seed) < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        object.__setattr__(self, "n_samples", int(self.n_samples))
        object.__setattr__(self, "seed", int(self.seed))
        if self.row_ids is None:
            ids = np.arange(self.n_rows, dtype=np.int64)
        else:
            ids = np.asarray(self.row_ids, dtype=np.int64).reshape(-1)
            if ids.shape[0] != self.n_rows:
                raise ValueError(
                    f"row_ids has {ids.shape[0]} entries for {self.n_rows} rows"
                )
            if ids.size and ids.min() < 0:
                raise ValueError(f"row_ids must be non-negative, got {ids.min()}")
        object.__setattr__(self, "row_ids", ids)

    def split_rows(self) -> List[np.ndarray]:
        # Each row payload stacks (evidence row, broadcast row id) so the
        # serving layer can scatter rows across micro-batches without
        # losing the identity that seeds the row's draws.
        return [
            np.stack([
                self.evidence[i],
                np.full(self.n_cols, self.row_ids[i], dtype=np.int64),
            ])
            for i in range(self.n_rows)
        ]

    @classmethod
    def join_rows(cls, rows: Sequence[np.ndarray], **params) -> "Sample":
        if not len(rows):
            return cls(
                evidence=np.zeros((0, 1), dtype=np.int64),
                row_ids=np.zeros(0, dtype=np.int64),
                **params,
            )
        stacked = np.stack(rows)  # (n_rows, 2, n_vars)
        return cls(evidence=stacked[:, 0], row_ids=stacked[:, 1, 0], **params)

    @classmethod
    def assemble_rows(cls, results: Sequence[object]):
        if not len(results):
            return np.zeros((0, 0, 0), dtype=np.int64)
        return np.stack([np.asarray(r, dtype=np.int64) for r in results])

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["row_ids"] = self.row_ids.tolist()
        return payload


@dataclass(frozen=True, eq=False)
class Expectation(Query):
    """Conditional moments of each variable under each evidence row.

    For every requested variable ``v`` (``variables=None`` means every
    model variable, in ascending id order) the session computes the
    conditional distribution :math:`P(X_v \\mid e)` from one shared
    state-sweep log pass plus one evidence pass — two passes total for any
    number of variables — and returns its ``moment``-th (optionally
    ``center``-ed, i.e. variance for ``moment=2``) moment of the
    variable's integer states, as an ``(n_rows, len(variables))`` float
    array.  A variable observed in a row contributes its observed value's
    point mass; rows whose evidence has probability zero yield ``nan``.
    """

    kind: ClassVar[QueryKind] = QueryKind.EXPECTATION
    variables: Optional[Tuple[int, ...]] = None
    moment: int = 1
    center: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "variables", _variables_tuple(self.variables))
        if int(self.moment) < 1:
            raise ValueError(f"moment must be >= 1, got {self.moment}")
        object.__setattr__(self, "moment", int(self.moment))
        object.__setattr__(self, "center", bool(self.center))


@dataclass(frozen=True, eq=False)
class Entropy(Query):
    """Per-variable conditional entropy (nats) under each evidence row.

    Plans exactly like :class:`Expectation` (one shared state-sweep pass
    plus one evidence pass) and returns
    :math:`H(X_v \\mid e) = -\\sum_s P(s \\mid e) \\log P(s \\mid e)` as an
    ``(n_rows, len(variables))`` float array, with the ``0 log 0 = 0``
    convention.  Observed variables have entropy zero; zero-probability
    evidence rows yield ``nan``.
    """

    kind: ClassVar[QueryKind] = QueryKind.ENTROPY
    variables: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "variables", _variables_tuple(self.variables))


@dataclass(frozen=True, eq=False)
class MutualInformation(Query):
    """Pairwise conditional mutual information matrix under each row.

    ``evidence`` may be omitted (``None``): the unconditional case is one
    fully-marginalized row.  Returns an ``(n_rows, k, k)`` symmetric float
    array over the ``k`` requested variables whose off-diagonal entries are
    :math:`I(X_u; X_v \\mid e)` in nats, whose diagonal carries the
    per-variable entropies :math:`H(X_v \\mid e)`, and whose entries
    involving a variable observed in the row are zero (an observed
    variable carries no information).  With ``normalize=True`` every entry
    is divided by :math:`\\sqrt{H(X_u) H(X_v)}` — a correlation-style
    matrix with unit diagonal — with zero-entropy denominators mapping to
    zero.  Plans to exactly three log passes (pair sweep, state sweep,
    evidence) regardless of ``k`` or the batch size; zero-probability
    evidence rows yield ``nan``.
    """

    kind: ClassVar[QueryKind] = QueryKind.MUTUAL_INFORMATION
    evidence: np.ndarray = None
    variables: Optional[Tuple[int, ...]] = None
    normalize: bool = False

    def __post_init__(self) -> None:
        if self.evidence is None:
            object.__setattr__(self, "evidence", {})
        super().__post_init__()
        object.__setattr__(self, "variables", _variables_tuple(self.variables))
        object.__setattr__(self, "normalize", bool(self.normalize))


@dataclass(frozen=True, eq=False)
class Classify(Query):
    """Posterior over one target variable's states: ``predict_proba``.

    The batched classification sweep: for each evidence row, the
    distribution :math:`P(X_t = s \\mid e)` over every state ``s`` of the
    ``target`` variable, as an ``(n_rows, n_states)`` float array (states
    in ascending value order; log-domain with ``log=True``).  Reuses the
    :class:`Conditional` plan shape — exactly two log passes, a joint
    sweep and an evidence pass, subtracted — regardless of batch size or
    state count, so each row's posterior sums to one by construction.

    A row that already observes the target is rejected at construction
    (the conditional would be a degenerate point mass and almost certainly
    a caller bug); zero-probability evidence rows yield ``nan``.
    """

    kind: ClassVar[QueryKind] = QueryKind.CLASSIFY
    target: int = None
    log: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target is None:
            raise ValueError("Classify requires a target variable")
        target = int(self.target)
        if target < 0:
            raise ValueError(f"target must be non-negative, got {target}")
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "log", bool(self.log))
        if target < self.n_cols:
            observed = self.evidence[:, target] >= 0
            if observed.any():
                row = int(np.argwhere(observed)[0, 0])
                raise ValueError(
                    f"Classify target variable {target} is observed in "
                    f"evidence row {row}; remove it from the evidence to "
                    "classify it"
                )


_QUERY_TYPES: Dict[QueryKind, type] = {
    QueryKind.LIKELIHOOD: Likelihood,
    QueryKind.LOG_LIKELIHOOD: LogLikelihood,
    QueryKind.MARGINAL: Marginal,
    QueryKind.CONDITIONAL: Conditional,
    QueryKind.MPE: MPE,
    QueryKind.SAMPLE: Sample,
    QueryKind.EXPECTATION: Expectation,
    QueryKind.ENTROPY: Entropy,
    QueryKind.MUTUAL_INFORMATION: MutualInformation,
    QueryKind.CLASSIFY: Classify,
}


def query_type(kind: Union[str, QueryKind]) -> type:
    """The query class registered for ``kind`` (validated by :func:`as_kind`)."""
    return _QUERY_TYPES[as_kind(kind)]


def serialize_query(query: Query) -> Dict[str, object]:
    """Serialize a query to a JSON-safe payload (exact round-trip)."""
    return query.to_payload()


def deserialize_query(payload: Mapping[str, object]) -> Query:
    """Rebuild a query from :func:`serialize_query` output.

    The ``kind`` discriminator is validated by :func:`as_kind`, so an
    unknown or corrupted payload fails here — at construction — with the
    list of known kinds.
    """
    if "kind" not in payload:
        raise ValueError("query payload is missing its 'kind' discriminator")
    kind = as_kind(payload["kind"])
    return _QUERY_TYPES[kind].from_payload(payload)
